#ifndef OVERGEN_TELEMETRY_LEDGER_H
#define OVERGEN_TELEMETRY_LEDGER_H

/**
 * @file
 * Per-component cycle accounting. Every ClockedComponent classifies
 * each simulated cycle into exactly one CycleCategory — a small fixed
 * stall taxonomy in the spirit of top-down microarchitectural
 * analysis — and accrues it in a CycleLedger. Fast-forwarded windows
 * are attributed in closed form from the frozen quiescent state, so a
 * ledger is bit-identical with fast-forward on or off (see DESIGN.md
 * "Cycle accounting and timelines" for the invariant and the
 * per-component classification rules).
 *
 * The ledger is always on: classification reads only state that is
 * frozen across skipped windows (never bandwidth budgets), costs a
 * handful of comparisons per executed cycle, and is excluded from the
 * quiescence fingerprints exactly like the stall counters it
 * generalizes.
 */

#include <array>
#include <charconv>
#include <cstdint>
#include <string>

#include "common/json.h"

namespace overgen::telemetry {

/** Append @p value in decimal to @p out — the hot-path alternative to
 * std::to_string / snprintf for timeline row formatting. */
inline void
appendDecimal(std::string &out, uint64_t value)
{
    char buf[20];
    auto res = std::to_chars(buf, buf + sizeof buf, value);
    out.append(buf, res.ptr);
}

/** Where one simulated cycle went. Exactly one per cycle. */
enum class CycleCategory : int
{
    /** The component made forward progress this cycle. */
    Busy = 0,
    /** Dispatcher startup: stream configuration + dispatch pipeline. */
    Startup,
    /** Fabric ports ready but the II/pipeline timing gate not due. */
    IiGate,
    /** Waiting on port FIFOs (missing inputs, full outputs, drains). */
    PortStall,
    /** Waiting on the DRAM path (fills in flight, MSHR-blocked
     * service, DRAM queues/writebacks pending). */
    DramFill,
    /** Waiting on NoC/L2 service bandwidth (queued requests, no DRAM
     * involvement). */
    NocContention,
    /** Finished; idling at the end-of-kernel barrier for peers. */
    Barrier,
    /** Nothing queued and nothing to do. */
    Idle,
};

/** Number of CycleCategory values (array size for CycleLedger). */
inline constexpr int kNumCycleCategories =
    static_cast<int>(CycleCategory::Idle) + 1;

/** @return the snake_case name of @p category ("port_stall", ...). */
const char *cycleCategoryName(CycleCategory category);

/** A per-component histogram over CycleCategory. POD, comparable,
 * and cheap: add() is one array increment. */
struct CycleLedger
{
    std::array<uint64_t, kNumCycleCategories> counts{};

    /** Attribute @p n cycles to @p category. */
    void
    add(CycleCategory category, uint64_t n = 1)
    {
        counts[static_cast<int>(category)] += n;
    }

    uint64_t
    operator[](CycleCategory category) const
    {
        return counts[static_cast<int>(category)];
    }

    /** Sum over all categories — must equal the cycles the component
     * was clocked for (executed + fast-forwarded). */
    uint64_t
    total() const
    {
        uint64_t sum = 0;
        for (uint64_t c : counts)
            sum += c;
        return sum;
    }

    bool operator==(const CycleLedger &other) const = default;

    /** {"busy": n, "port_stall": n, ...} with every category present
     * (deterministic key set, zero counts included). */
    Json toJson() const;

    /** Append the compact serialization of toJson() — same bytes,
     * sorted keys — to @p out without building the object. Timeline
     * rows are formatted on the simulation hot path; the map-based
     * builder would dominate the instrumentation budget enforced by
     * bench/micro_sim. */
    void appendCompact(std::string &out) const;
};

} // namespace overgen::telemetry

#endif // OVERGEN_TELEMETRY_LEDGER_H
