#ifndef OVERGEN_TELEMETRY_BRIDGE_H
#define OVERGEN_TELEMETRY_BRIDGE_H

/**
 * @file
 * Header-only adapters from simulator / model result structs to the
 * plain-number telemetry::KernelObservation. Lives in telemetry/ but
 * is only included by consumers that already link both sides (bench
 * harnesses, tests), keeping the telemetry library itself independent
 * of sim and model.
 */

#include "model/perf.h"
#include "sim/simulate.h"
#include "telemetry/attribution.h"

namespace overgen::telemetry {

/** Fold one simulated run + its analytical prediction into an
 * observation for the attribution report. */
inline KernelObservation
observeKernel(const std::string &kernel, const sim::SimResult &sim,
              const sim::SimConfig &config,
              const adg::SystemParams &sys,
              const model::PerfBreakdown &prediction)
{
    KernelObservation obs;
    obs.kernel = kernel;
    obs.cycles = sim.cycles;
    obs.tiles = static_cast<int>(sim.tiles.size());
    for (const sim::TileStats &t : sim.tiles)
        obs.fabricStallCycles += t.fabricStallCycles;
    obs.dramBytes =
        sim.memory.dramBytesRead + sim.memory.dramBytesWritten;
    obs.dramBandwidthBytes =
        static_cast<double>(config.dramChannelBandwidthBytes) *
        std::max(1, sys.dramChannels);
    obs.l2Bytes = sim.memory.nocBytes;
    obs.l2BandwidthBytes =
        static_cast<double>(config.l2BankBandwidthBytes) *
        std::max(1, sys.l2Banks);
    obs.mshrStallCycles = sim.memory.mshrStallCycles;
    obs.simIpc = sim.ipc;
    obs.modelBottleneck = prediction.bottleneck;
    obs.modelIpc = prediction.ipc;
    return obs;
}

} // namespace overgen::telemetry

#endif // OVERGEN_TELEMETRY_BRIDGE_H
