#include "telemetry/sink.h"

#include <cstdio>

#include "common/logging.h"

namespace overgen::telemetry {

void
Sink::logDse(const Json &record)
{
    std::string line = record.dump();  // serialize outside the lock
    std::lock_guard<std::mutex> lock(dseMutex);
    dseLog.push_back(std::move(line));
}

void
Sink::flush()
{
    if (!opts.tracePath.empty())
        emitter.writeTo(opts.tracePath);
    if (!opts.timelinePath.empty())
        series.writeTo(opts.timelinePath);
    if (!opts.dseLogPath.empty()) {
        std::lock_guard<std::mutex> lock(dseMutex);
        std::FILE *f = std::fopen(opts.dseLogPath.c_str(), "w");
        OG_ASSERT(f != nullptr, "cannot open DSE log '",
                  opts.dseLogPath, "'");
        for (const std::string &line : dseLog) {
            std::fwrite(line.data(), 1, line.size(), f);
            std::fputc('\n', f);
        }
        std::fclose(f);
    }
}

} // namespace overgen::telemetry
