#include "telemetry/timeline.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace overgen::telemetry {

std::vector<std::string>
TimelineRun::lines() const
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start < buf.size()) {
        size_t end = buf.find('\n', start);
        OG_ASSERT(end != std::string::npos,
                  "unterminated timeline row");
        out.push_back(buf.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

TimelineRun *
Timeline::beginRun(const std::string &label)
{
    std::lock_guard<std::mutex> lock(mutex);
    runs.emplace_back(label);
    return &runs.back();
}

std::vector<const TimelineRun *>
Timeline::sortedRuns() const
{
    std::vector<const TimelineRun *> order;
    {
        std::lock_guard<std::mutex> lock(mutex);
        for (const TimelineRun &run : runs)
            order.push_back(&run);
    }
    std::sort(order.begin(), order.end(),
              [](const TimelineRun *a, const TimelineRun *b) {
                  if (a->label() != b->label())
                      return a->label() < b->label();
                  return a->bytes() < b->bytes();
              });
    return order;
}

size_t
Timeline::rowCount() const
{
    size_t n = 0;
    std::lock_guard<std::mutex> lock(mutex);
    for (const TimelineRun &run : runs) {
        const std::string &bytes = run.bytes();
        n += static_cast<size_t>(
            std::count(bytes.begin(), bytes.end(), '\n'));
    }
    return n;
}

std::vector<std::string>
Timeline::lines() const
{
    std::vector<std::string> out;
    for (const TimelineRun *run : sortedRuns()) {
        std::vector<std::string> rows = run->lines();
        out.insert(out.end(),
                   std::make_move_iterator(rows.begin()),
                   std::make_move_iterator(rows.end()));
    }
    return out;
}

void
Timeline::writeTo(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    OG_ASSERT(f != nullptr, "cannot open timeline '", path, "'");
    for (const std::string &line : lines()) {
        std::fwrite(line.data(), 1, line.size(), f);
        std::fputc('\n', f);
    }
    std::fclose(f);
}

} // namespace overgen::telemetry
