#include "telemetry/ledger.h"

#include <cstdio>

#include "common/logging.h"

namespace overgen::telemetry {

const char *
cycleCategoryName(CycleCategory category)
{
    switch (category) {
      case CycleCategory::Busy:
        return "busy";
      case CycleCategory::Startup:
        return "startup";
      case CycleCategory::IiGate:
        return "ii_gate";
      case CycleCategory::PortStall:
        return "port_stall";
      case CycleCategory::DramFill:
        return "dram_fill";
      case CycleCategory::NocContention:
        return "noc_contention";
      case CycleCategory::Barrier:
        return "barrier";
      case CycleCategory::Idle:
        return "idle";
    }
    OG_PANIC("unknown CycleCategory ", static_cast<int>(category));
}

Json
CycleLedger::toJson() const
{
    Json obj = Json::makeObject();
    for (int c = 0; c < kNumCycleCategories; ++c) {
        obj.set(cycleCategoryName(static_cast<CycleCategory>(c)),
                Json(counts[c]));
    }
    return obj;
}

void
CycleLedger::appendCompact(std::string &out) const
{
    // Alphabetical category order — the byte order Json::dump gives
    // the std::map-backed toJson() object.
    static constexpr CycleCategory kSorted[] = {
        CycleCategory::Barrier,   CycleCategory::Busy,
        CycleCategory::DramFill,  CycleCategory::Idle,
        CycleCategory::IiGate,    CycleCategory::NocContention,
        CycleCategory::PortStall, CycleCategory::Startup,
    };
    out += '{';
    bool first = true;
    for (CycleCategory cat : kSorted) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += cycleCategoryName(cat);
        out += "\":";
        appendDecimal(out, (*this)[cat]);
    }
    out += '}';
}

} // namespace overgen::telemetry
