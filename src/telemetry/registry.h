#ifndef OVERGEN_TELEMETRY_REGISTRY_H
#define OVERGEN_TELEMETRY_REGISTRY_H

/**
 * @file
 * Hierarchical counter registry: named u64 counters and value
 * distributions, addressed by '/'-separated paths (e.g.
 * "sim/fir/tile0/firings"). Lookup interns the path once; callers
 * cache the returned reference, so per-cycle increments are a single
 * add on a stable address. The registry nests by path segment when
 * serialized, giving a browsable JSON tree of everything the
 * simulator and DSE observed.
 */

#include <cstdint>
#include <map>
#include <string>

#include "common/json.h"

namespace overgen::telemetry {

/** A monotonically increasing event count. */
class Counter
{
  public:
    void inc() { val += 1; }
    void add(uint64_t n) { val += n; }
    uint64_t value() const { return val; }

  private:
    uint64_t val = 0;
};

/** Summary statistics of a stream of samples (occupancies, depths). */
class Distribution
{
  public:
    void
    record(double v)
    {
        if (n == 0 || v < lo)
            lo = v;
        if (n == 0 || v > hi)
            hi = v;
        sum += v;
        ++n;
    }

    uint64_t count() const { return n; }
    double total() const { return sum; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }

  private:
    uint64_t n = 0;
    double sum = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * The registry. std::map guarantees node stability, so references
 * returned by counter()/distribution() stay valid for the registry's
 * lifetime regardless of later insertions.
 */
class Registry
{
  public:
    /** @return the counter at @p path, creating it at zero. */
    Counter &counter(const std::string &path);
    /** @return the distribution at @p path, creating it empty. */
    Distribution &distribution(const std::string &path);

    const std::map<std::string, Counter> &counters() const
    {
        return counterMap;
    }
    const std::map<std::string, Distribution> &distributions() const
    {
        return distMap;
    }

    /** Serialize as a tree nested by '/'-separated path segments. */
    Json toJson() const;

    /** Drop every counter and distribution. */
    void clear();

  private:
    std::map<std::string, Counter> counterMap;
    std::map<std::string, Distribution> distMap;
};

} // namespace overgen::telemetry

#endif // OVERGEN_TELEMETRY_REGISTRY_H
