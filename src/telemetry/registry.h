#ifndef OVERGEN_TELEMETRY_REGISTRY_H
#define OVERGEN_TELEMETRY_REGISTRY_H

/**
 * @file
 * Hierarchical counter registry: named u64 counters and value
 * distributions, addressed by '/'-separated paths (e.g.
 * "sim/fir/tile0/firings"). Lookup interns the path once; callers
 * cache the returned reference, so per-cycle increments are a single
 * add on a stable address. The registry nests by path segment when
 * serialized, giving a browsable JSON tree of everything the
 * simulator and DSE observed.
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/json.h"

namespace overgen::telemetry {

/**
 * A monotonically increasing event count. Increments are relaxed
 * atomics: concurrent instrumented code (parallel DSE candidate
 * evaluation, bench harness fan-out) may bump the same counter from
 * several threads without external locking; relaxed ordering is
 * enough because counters carry no inter-thread control flow.
 */
class Counter
{
  public:
    void inc() { val.fetch_add(1, std::memory_order_relaxed); }
    void add(uint64_t n) { val.fetch_add(n, std::memory_order_relaxed); }
    uint64_t value() const { return val.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> val{ 0 };
};

/**
 * Summary statistics of a stream of samples (occupancies, depths).
 * record() updates several fields together, so it takes a per-
 * distribution mutex; these are sampled-interval paths, not per-cycle
 * hot paths.
 */
class Distribution
{
  public:
    void
    record(double v)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (n == 0 || v < lo)
            lo = v;
        if (n == 0 || v > hi)
            hi = v;
        sum += v;
        ++n;
    }

    uint64_t
    count() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return n;
    }
    double
    total() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return sum;
    }
    double
    min() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return n ? lo : 0.0;
    }
    double
    max() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return n ? hi : 0.0;
    }
    double
    mean() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return n ? sum / static_cast<double>(n) : 0.0;
    }

  private:
    mutable std::mutex mutex;
    uint64_t n = 0;
    double sum = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * The registry. std::map guarantees node stability, so references
 * returned by counter()/distribution() stay valid for the registry's
 * lifetime regardless of later insertions; interning itself is
 * mutex-guarded, so threads may look up paths concurrently. Callers
 * cache the returned reference and pay no lock on the increment.
 */
class Registry
{
  public:
    /** @return the counter at @p path, creating it at zero. */
    Counter &counter(const std::string &path);
    /** @return the distribution at @p path, creating it empty. */
    Distribution &distribution(const std::string &path);

    /** Direct map access; callers must be quiescent (no concurrent
     * interning) — serialization and tests, not instrumentation. */
    const std::map<std::string, Counter> &counters() const
    {
        return counterMap;
    }
    const std::map<std::string, Distribution> &distributions() const
    {
        return distMap;
    }

    /** Serialize as a tree nested by '/'-separated path segments. */
    Json toJson() const;

    /** Drop every counter and distribution. */
    void clear();

  private:
    mutable std::mutex mutex;  //!< guards map interning, not updates
    std::map<std::string, Counter> counterMap;
    std::map<std::string, Distribution> distMap;
};

} // namespace overgen::telemetry

#endif // OVERGEN_TELEMETRY_REGISTRY_H
