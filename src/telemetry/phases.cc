#include "telemetry/phases.h"

#include <algorithm>
#include <charconv>
#include <array>

#include "common/logging.h"

namespace overgen::telemetry {

namespace {

/** Hysteresis pair around the peak busy fraction: steady state is
 * entered at 85% of peak and only left below 70% of peak, so
 * interval-sized dips between the thresholds do not fragment the
 * steady span. */
constexpr double kSteadyEnterFraction = 0.85;
constexpr double kSteadyExitFraction = 0.70;
/** An interval is startup when the majority of its tile cycles are in
 * the Startup category (stream configuration + dispatch pipeline). */
constexpr double kStartupMajority = 0.5;

/** Parse the unsigned decimal following @p key in @p row; @return
 * whether the key was present. */
bool
parseField(std::string_view row, std::string_view key, uint64_t &out)
{
    size_t at = row.find(key);
    if (at == std::string_view::npos)
        return false;
    const char *begin = row.data() + at + key.size();
    const char *end = row.data() + row.size();
    auto res = std::from_chars(begin, end, out);
    OG_ASSERT(res.ec == std::errc(), "bad timeline field ", key);
    return true;
}

/** Category names in the alphabetical order
 * CycleLedger::appendCompact emits, paired with their enum value. */
struct SortedCategory
{
    std::string_view name;
    int index;
};

const std::array<SortedCategory, kNumCycleCategories> &
sortedCategories()
{
    static const auto table = [] {
        std::array<SortedCategory, kNumCycleCategories> t;
        for (int c = 0; c < kNumCycleCategories; ++c)
            t[c] = { cycleCategoryName(static_cast<CycleCategory>(c)),
                     c };
        std::sort(t.begin(), t.end(),
                  [](const SortedCategory &a, const SortedCategory &b) {
                      return a.name < b.name;
                  });
        return t;
    }();
    return table;
}

/** Parse the `"ledger":{...}` object of @p row into @p out. Keys are
 * the snake_case category names in sorted order (the exact bytes
 * CycleLedger::appendCompact writes), so the matcher expects them in
 * that order and only falls back to a scan on rows from another
 * writer. */
void
parseLedger(std::string_view row, CycleLedger &out)
{
    constexpr std::string_view key = "\"ledger\":{";
    size_t at = row.find(key);
    OG_ASSERT(at != std::string_view::npos,
              "timeline row without a ledger: ", std::string(row));
    size_t pos = at + key.size();
    size_t close = row.find('}', pos);
    OG_ASSERT(close != std::string_view::npos,
              "unterminated ledger in timeline row");
    std::string_view body = row.substr(pos, close - pos);
    const auto &sorted = sortedCategories();
    size_t expected = 0;
    while (!body.empty()) {
        OG_ASSERT(body.front() == '"', "malformed ledger entry");
        size_t name_end = body.find('"', 1);
        OG_ASSERT(name_end != std::string_view::npos,
                  "malformed ledger key");
        std::string_view name = body.substr(1, name_end - 1);
        OG_ASSERT(body.size() > name_end + 1 &&
                      body[name_end + 1] == ':',
                  "malformed ledger entry");
        const char *vbegin = body.data() + name_end + 2;
        const char *vend = body.data() + body.size();
        uint64_t value = 0;
        auto res = std::from_chars(vbegin, vend, value);
        OG_ASSERT(res.ec == std::errc(), "bad ledger count");
        int matched = -1;
        if (expected < sorted.size() &&
            name == sorted[expected].name) {
            matched = sorted[expected].index;
            ++expected;
        } else {
            for (const SortedCategory &cat : sorted) {
                if (name == cat.name) {
                    matched = cat.index;
                    break;
                }
            }
        }
        OG_ASSERT(matched >= 0, "unknown ledger category '",
                  std::string(name), "'");
        out.counts[matched] = value;
        body.remove_prefix(
            static_cast<size_t>(res.ptr - body.data()));
        if (!body.empty() && body.front() == ',')
            body.remove_prefix(1);
    }
}

/** The dominant non-busy category of @p ledger (Busy when nothing
 * stalls). Ties break toward the lower enum value — deterministic. */
CycleCategory
dominantStall(const CycleLedger &ledger)
{
    auto best = CycleCategory::Busy;
    uint64_t most = 0;
    for (int c = 0; c < kNumCycleCategories; ++c) {
        auto cat = static_cast<CycleCategory>(c);
        if (cat == CycleCategory::Busy)
            continue;
        if (ledger[cat] > most) {
            most = ledger[cat];
            best = cat;
        }
    }
    return best;
}

/** Element-wise a - b (cumulative series are monotone per category). */
CycleLedger
ledgerDelta(const CycleLedger &a, const CycleLedger &b)
{
    CycleLedger d;
    for (int c = 0; c < kNumCycleCategories; ++c) {
        OG_ASSERT(a.counts[c] >= b.counts[c],
                  "non-monotone ledger series");
        d.counts[c] = a.counts[c] - b.counts[c];
    }
    return d;
}

void
ledgerAccumulate(CycleLedger &into, const CycleLedger &from)
{
    for (int c = 0; c < kNumCycleCategories; ++c)
        into.counts[c] += from.counts[c];
}

} // namespace

const char *
phaseKindName(PhaseKind kind)
{
    switch (kind) {
    case PhaseKind::Startup:
        return "startup";
    case PhaseKind::Ramp:
        return "ramp";
    case PhaseKind::Steady:
        return "steady";
    case PhaseKind::Drain:
        return "drain";
    }
    return "?";
}

uint64_t
PhaseProfile::cyclesIn(PhaseKind kind) const
{
    uint64_t sum = 0;
    for (const PhaseSpan &span : spans) {
        if (span.kind == kind)
            sum += span.cycles();
    }
    return sum;
}

Json
PhaseProfile::toJson() const
{
    Json obj = Json::makeObject();
    obj.set("cycles", Json(static_cast<int64_t>(cycles)));
    obj.set("ramp_cycles", Json(static_cast<int64_t>(rampCycles)));
    obj.set("reached_steady", Json(reachedSteady));
    obj.set("steady_ipc", Json(steadyIpc));
    Json arr = Json::makeArray();
    for (const PhaseSpan &span : spans) {
        Json s = Json::makeObject();
        s.set("phase", Json(phaseKindName(span.kind)));
        s.set("begin", Json(static_cast<int64_t>(span.beginCycle)));
        s.set("end", Json(static_cast<int64_t>(span.endCycle)));
        s.set("cycles", Json(static_cast<int64_t>(span.cycles())));
        s.set("share",
              Json(cycles > 0 ? static_cast<double>(span.cycles()) /
                                    static_cast<double>(cycles)
                              : 0.0));
        s.set("busy", Json(span.busyFraction));
        s.set("bottleneck", Json(cycleCategoryName(span.bottleneck)));
        arr.push(std::move(s));
    }
    obj.set("spans", std::move(arr));
    return obj;
}

std::vector<PhaseSample>
phaseSamplesFromRows(std::string_view rows)
{
    // Aggregate by cycle: rows of one boundary (memory + each tile)
    // merge into one sample regardless of the order they were
    // appended or concatenated in. The vector is kept cycle-sorted
    // with a back() fast path — a run's buffer appends boundaries in
    // order, so the sorted insert only runs on shuffled input.
    std::vector<PhaseSample> samples;
    auto sample_at = [&samples](uint64_t cycle) -> PhaseSample & {
        if (!samples.empty() && samples.back().cycle == cycle)
            return samples.back();
        if (samples.empty() || cycle > samples.back().cycle) {
            samples.emplace_back().cycle = cycle;
            return samples.back();
        }
        auto it = std::lower_bound(
            samples.begin(), samples.end(), cycle,
            [](const PhaseSample &s, uint64_t c) {
                return s.cycle < c;
            });
        if (it == samples.end() || it->cycle != cycle) {
            it = samples.insert(it, PhaseSample{});
            it->cycle = cycle;
        }
        return *it;
    };
    size_t pos = 0;
    while (pos < rows.size()) {
        size_t eol = rows.find('\n', pos);
        if (eol == std::string_view::npos)
            eol = rows.size();
        std::string_view row = rows.substr(pos, eol - pos);
        pos = eol + 1;
        if (row.empty())
            continue;
        uint64_t cycle = 0;
        OG_ASSERT(parseField(row, "\"cycle\":", cycle),
                  "timeline row without a cycle: ", std::string(row));
        PhaseSample &sample = sample_at(cycle);
        constexpr std::string_view comp_key = "\"comp\":\"";
        size_t comp_at = row.find(comp_key);
        OG_ASSERT(comp_at != std::string_view::npos,
                  "timeline row without a comp: ", std::string(row));
        bool is_memory =
            row.compare(comp_at + comp_key.size(), 7, "memory\"") == 0;
        if (is_memory) {
            parseLedger(row, sample.memory);
        } else {
            CycleLedger tile;
            parseLedger(row, tile);
            ledgerAccumulate(sample.tiles, tile);
            uint64_t v = 0;
            if (parseField(row, "\"iterations\":", v))
                sample.iterations += v;
            if (parseField(row, "\"firings\":", v))
                sample.firings += v;
        }
    }
    return samples;
}

void
appendTerminalSample(std::vector<PhaseSample> &samples,
                     uint64_t cycles, const CycleLedger &tiles,
                     const CycleLedger &memory, uint64_t iterations,
                     uint64_t firings)
{
    if (samples.empty() && cycles == 0)
        return;  // a zero-cycle run has no intervals to segment
    if (!samples.empty()) {
        OG_ASSERT(samples.back().cycle <= cycles,
                  "terminal sample at cycle ", cycles,
                  " precedes the last row at ", samples.back().cycle);
        if (samples.back().cycle == cycles)
            return;
    }
    PhaseSample terminal;
    terminal.cycle = cycles;
    terminal.tiles = tiles;
    terminal.memory = memory;
    terminal.iterations = iterations;
    terminal.firings = firings;
    samples.push_back(std::move(terminal));
}

PhaseProfile
analyzePhases(const std::vector<PhaseSample> &samples,
              double instsPerFiring)
{
    PhaseProfile profile;
    if (samples.empty())
        return profile;
    profile.cycles = samples.back().cycle;

    // Per-interval deltas against an implicit all-zero origin sample.
    const size_t n = samples.size();
    std::vector<CycleLedger> tile_delta(n);
    std::vector<CycleLedger> mem_delta(n);
    std::vector<double> busy(n);
    std::vector<double> startup(n);
    std::vector<uint64_t> firing_delta(n);
    PhaseSample origin;
    for (size_t i = 0; i < n; ++i) {
        const PhaseSample &prev = i == 0 ? origin : samples[i - 1];
        OG_ASSERT(samples[i].cycle > prev.cycle,
                  "phase samples not strictly cycle-increasing");
        tile_delta[i] = ledgerDelta(samples[i].tiles, prev.tiles);
        mem_delta[i] = ledgerDelta(samples[i].memory, prev.memory);
        OG_ASSERT(samples[i].firings >= prev.firings,
                  "non-monotone firing series");
        firing_delta[i] = samples[i].firings - prev.firings;
        uint64_t total = tile_delta[i].total();
        double denom =
            total > 0 ? static_cast<double>(total) : 1.0;
        busy[i] = static_cast<double>(
                      tile_delta[i][CycleCategory::Busy]) /
                  denom;
        startup[i] = static_cast<double>(
                         tile_delta[i][CycleCategory::Startup]) /
                     denom;
    }
    profile.busyFractions = busy;

    // Startup: maximal prefix of startup-majority intervals.
    size_t startup_end = 0;
    while (startup_end < n && startup[startup_end] >= kStartupMajority)
        ++startup_end;

    // Hysteresis thresholds off the peak busy fraction.
    double peak = 0.0;
    for (double b : busy)
        peak = std::max(peak, b);
    double enter = kSteadyEnterFraction * peak;
    double leave = kSteadyExitFraction * peak;

    size_t steady_begin = n;
    if (peak > 0.0) {
        for (size_t i = startup_end; i < n; ++i) {
            if (busy[i] >= enter) {
                steady_begin = i;
                break;
            }
        }
    }
    size_t steady_end = n;  // one past the last steady interval
    if (steady_begin < n) {
        for (size_t i = n; i-- > steady_begin;) {
            if (busy[i] >= leave) {
                steady_end = i + 1;
                break;
            }
        }
        profile.reachedSteady = true;
    }

    auto kind_of = [&](size_t i) {
        if (i < startup_end)
            return PhaseKind::Startup;
        if (!profile.reachedSteady || i < steady_begin)
            return PhaseKind::Ramp;
        if (i < steady_end)
            return PhaseKind::Steady;
        return PhaseKind::Drain;
    };

    // Merge consecutive same-kind intervals into spans.
    for (size_t i = 0; i < n; ++i) {
        PhaseKind kind = kind_of(i);
        uint64_t begin = i == 0 ? 0 : samples[i - 1].cycle;
        if (profile.spans.empty() ||
            profile.spans.back().kind != kind) {
            PhaseSpan span;
            span.kind = kind;
            span.beginCycle = begin;
            span.endCycle = samples[i].cycle;
            profile.spans.push_back(span);
        } else {
            profile.spans.back().endCycle = samples[i].cycle;
        }
        PhaseSpan &span = profile.spans.back();
        ledgerAccumulate(span.tiles, tile_delta[i]);
        ledgerAccumulate(span.memory, mem_delta[i]);
    }
    for (PhaseSpan &span : profile.spans) {
        uint64_t total = span.tiles.total();
        span.busyFraction =
            total > 0
                ? static_cast<double>(
                      span.tiles[CycleCategory::Busy]) /
                      static_cast<double>(total)
                : 0.0;
        span.bottleneck = dominantStall(span.tiles);
    }

    profile.rampCycles =
        profile.reachedSteady
            ? (steady_begin == 0 ? 0 : samples[steady_begin - 1].cycle)
            : profile.cycles;

    if (profile.reachedSteady && instsPerFiring > 0.0) {
        uint64_t steady_cycles = 0;
        uint64_t steady_firings = 0;
        uint64_t begin =
            steady_begin == 0 ? 0 : samples[steady_begin - 1].cycle;
        steady_cycles = samples[steady_end - 1].cycle - begin;
        for (size_t i = steady_begin; i < steady_end; ++i)
            steady_firings += firing_delta[i];
        if (steady_cycles > 0) {
            profile.steadyIpc =
                static_cast<double>(steady_firings) * instsPerFiring /
                static_cast<double>(steady_cycles);
        }
    }
    return profile;
}

} // namespace overgen::telemetry
