#include "telemetry/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace overgen::telemetry {

uint32_t
TraceEmitter::intern(const std::string &s)
{
    // Caller holds `mutex` (all public recorders lock on entry).
    auto it = internIndex.find(s);
    if (it != internIndex.end())
        return it->second;
    uint32_t index = static_cast<uint32_t>(strings.size());
    strings.push_back(s);
    internIndex.emplace(s, index);
    return index;
}

void
TraceEmitter::push(char phase, const std::string &name,
                   const std::string &cat, int pid, int tid,
                   uint64_t ts, double value)
{
    TraceEvent ev;
    ev.phase = phase;
    ev.name = intern(name);
    ev.cat = intern(cat);
    ev.pid = pid;
    ev.tid = tid;
    ev.ts = ts;
    ev.value = value;
    events.push_back(ev);
}

void
TraceEmitter::begin(const std::string &name, const std::string &cat,
                    int pid, int tid, uint64_t ts)
{
    std::lock_guard<std::mutex> lock(mutex);
    push('B', name, cat, pid, tid, ts, 0.0);
}

void
TraceEmitter::end(const std::string &name, const std::string &cat,
                  int pid, int tid, uint64_t ts)
{
    std::lock_guard<std::mutex> lock(mutex);
    push('E', name, cat, pid, tid, ts, 0.0);
}

void
TraceEmitter::instant(const std::string &name, const std::string &cat,
                      int pid, int tid, uint64_t ts)
{
    std::lock_guard<std::mutex> lock(mutex);
    push('i', name, cat, pid, tid, ts, 0.0);
}

void
TraceEmitter::counter(const std::string &name, int pid, int tid,
                      uint64_t ts, double value)
{
    std::lock_guard<std::mutex> lock(mutex);
    push('C', name, "counter", pid, tid, ts, value);
}

void
TraceEmitter::processName(int pid, const std::string &name)
{
    // Metadata payload string rides in `value` as an intern index.
    std::lock_guard<std::mutex> lock(mutex);
    push('M', "process_name", "__metadata", pid, 0, 0,
         static_cast<double>(intern(name)));
}

void
TraceEmitter::threadName(int pid, int tid, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    push('M', "thread_name", "__metadata", pid, tid, 0,
         static_cast<double>(intern(name)));
}

Json
TraceEmitter::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex);
    // The viewer tolerates unsorted events but Perfetto's importer is
    // faster (and begin/end pairing unambiguous) with sorted ts.
    // Metadata sorts first at ts 0; stable sort keeps same-ts
    // begin-before-end emission order intact.
    std::vector<const TraceEvent *> order;
    order.reserve(events.size());
    for (const TraceEvent &ev : events)
        order.push_back(&ev);
    std::stable_sort(order.begin(), order.end(),
                     [](const TraceEvent *a, const TraceEvent *b) {
                         if ((a->phase == 'M') != (b->phase == 'M'))
                             return a->phase == 'M';
                         return a->ts < b->ts;
                     });

    Json list = Json::makeArray();
    for (const TraceEvent *ev : order) {
        Json obj = Json::makeObject();
        obj.set("name", Json(strings[ev->name]));
        obj.set("ph", Json(std::string(1, ev->phase)));
        obj.set("pid", Json(ev->pid));
        obj.set("tid", Json(ev->tid));
        obj.set("ts", Json(ev->ts));
        if (ev->phase == 'M') {
            Json args = Json::makeObject();
            args.set("name",
                     Json(strings[static_cast<uint32_t>(ev->value)]));
            obj.set("args", std::move(args));
        } else {
            obj.set("cat", Json(strings[ev->cat]));
            if (ev->phase == 'C') {
                Json args = Json::makeObject();
                args.set("value", Json(ev->value));
                obj.set("args", std::move(args));
            }
            if (ev->phase == 'i')
                obj.set("s", Json("t"));
        }
        list.push(std::move(obj));
    }
    Json root = Json::makeObject();
    root.set("traceEvents", std::move(list));
    root.set("displayTimeUnit", Json("ms"));
    return root;
}

void
TraceEmitter::writeTo(const std::string &path) const
{
    std::string text = toJson().dump();
    std::FILE *f = std::fopen(path.c_str(), "w");
    OG_ASSERT(f != nullptr, "cannot open trace file '", path, "'");
    size_t written = std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    OG_ASSERT(written == text.size(), "short write to '", path, "'");
}

} // namespace overgen::telemetry
