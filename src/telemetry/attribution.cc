#include "telemetry/attribution.h"

#include <algorithm>
#include <cstdio>

namespace overgen::telemetry {

std::string
modelClassOf(const std::string &bottleneck)
{
    if (bottleneck == "dram" || bottleneck == "l2")
        return "memory";
    return "compute";
}

KernelAttribution
attributeKernel(const KernelObservation &obs)
{
    KernelAttribution out;
    out.kernel = obs.kernel;
    out.cycles = obs.cycles;
    out.simIpc = obs.simIpc;
    out.modelIpc = obs.modelIpc;
    out.modelBottleneck = obs.modelBottleneck;
    out.modelClass = modelClassOf(obs.modelBottleneck);

    double tile_cycles = static_cast<double>(obs.cycles) *
                         std::max(1, obs.tiles);
    if (tile_cycles > 0.0) {
        out.stallFraction =
            static_cast<double>(obs.fabricStallCycles) / tile_cycles;
        out.mshrStallFraction =
            static_cast<double>(obs.mshrStallCycles) /
            static_cast<double>(obs.cycles);
    }
    if (obs.cycles > 0 && obs.dramBandwidthBytes > 0.0) {
        out.dramUtilization =
            static_cast<double>(obs.dramBytes) /
            (static_cast<double>(obs.cycles) * obs.dramBandwidthBytes);
    }
    if (obs.cycles > 0 && obs.l2BandwidthBytes > 0.0) {
        out.l2Utilization =
            static_cast<double>(obs.l2Bytes) /
            (static_cast<double>(obs.cycles) * obs.l2BandwidthBytes);
    }

    // Memory-bound when a shared-memory level is near saturation, or
    // when the fabric spends most cycles stalled while memory traffic
    // is clearly flowing (latency-bound rather than bandwidth-bound,
    // but still limited by the memory system, not compute).
    bool bandwidth_saturated =
        out.dramUtilization > 0.5 || out.l2Utilization > 0.5;
    bool latency_limited =
        out.stallFraction > 0.4 &&
        (out.dramUtilization > 0.05 || out.mshrStallFraction > 0.01);
    out.simClass = (bandwidth_saturated || latency_limited)
                       ? "memory"
                       : "compute";
    out.agree = out.simClass == out.modelClass;
    return out;
}

AttributionReport
buildReport(const std::vector<KernelObservation> &observations)
{
    AttributionReport report;
    report.kernels.reserve(observations.size());
    for (const KernelObservation &obs : observations)
        report.kernels.push_back(attributeKernel(obs));
    return report;
}

std::vector<std::string>
AttributionReport::disagreements() const
{
    std::vector<std::string> out;
    for (const KernelAttribution &k : kernels) {
        if (!k.agree)
            out.push_back(k.kernel);
    }
    return out;
}

Json
AttributionReport::toJson() const
{
    Json list = Json::makeArray();
    for (const KernelAttribution &k : kernels) {
        Json obj = Json::makeObject();
        obj.set("kernel", Json(k.kernel));
        obj.set("cycles", Json(k.cycles));
        obj.set("stall_fraction", Json(k.stallFraction));
        obj.set("dram_utilization", Json(k.dramUtilization));
        obj.set("l2_utilization", Json(k.l2Utilization));
        obj.set("mshr_stall_fraction", Json(k.mshrStallFraction));
        obj.set("sim_ipc", Json(k.simIpc));
        obj.set("model_ipc", Json(k.modelIpc));
        obj.set("sim_class", Json(k.simClass));
        obj.set("model_class", Json(k.modelClass));
        obj.set("model_bottleneck", Json(k.modelBottleneck));
        obj.set("agree", Json(k.agree));
        list.push(std::move(obj));
    }
    Json root = Json::makeObject();
    root.set("kernels", std::move(list));
    Json dis = Json::makeArray();
    for (const std::string &name : disagreements())
        dis.push(Json(name));
    root.set("disagreements", std::move(dis));
    return root;
}

std::string
AttributionReport::format() const
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-12s %10s %7s %7s %7s %9s %9s %-8s %-8s %s\n",
                  "kernel", "cycles", "stall", "dram", "l2", "sim-ipc",
                  "mdl-ipc", "sim", "model", "agree");
    out += line;
    for (const KernelAttribution &k : kernels) {
        std::snprintf(line, sizeof(line),
                      "%-12s %10llu %6.0f%% %6.0f%% %6.0f%% %9.2f "
                      "%9.2f %-8s %-8s %s\n",
                      k.kernel.c_str(),
                      static_cast<unsigned long long>(k.cycles),
                      100.0 * k.stallFraction,
                      100.0 * k.dramUtilization,
                      100.0 * k.l2Utilization, k.simIpc, k.modelIpc,
                      k.simClass.c_str(),
                      (k.modelClass + "(" + k.modelBottleneck + ")")
                          .c_str(),
                      k.agree ? "yes" : "NO");
        out += line;
    }
    std::vector<std::string> dis = disagreements();
    if (dis.empty()) {
        out += "model and simulator agree on every kernel\n";
    } else {
        out += "model-vs-sim disagreements:";
        for (const std::string &name : dis) {
            out += ' ';
            out += name;
        }
        out += '\n';
    }
    return out;
}

} // namespace overgen::telemetry
