#ifndef OVERGEN_TELEMETRY_TIMELINE_H
#define OVERGEN_TELEMETRY_TIMELINE_H

/**
 * @file
 * Interval time-series sampling. A Timeline collects TimelineRuns —
 * one per simulate() call — each a stream of JSONL rows snapshotting
 * the run's CycleLedgers and key gauges every
 * `SinkOptions::statsInterval` cycles (`--stats-interval` on the
 * bench harnesses).
 *
 * Concurrency contract (mirrors Sink::logDse): beginRun() is
 * mutex-guarded so concurrent sim::runBatch jobs can open runs in any
 * completion order, while each TimelineRun is appended to by exactly
 * one simulation thread (a simulation is single-threaded), so
 * append() takes no lock. lines() and writeTo() serialize runs sorted
 * by (label, content) — byte-identical output for every
 * `--sim-threads` value — and require the batch to have completed
 * (no concurrent append), like Sink::dseLines().
 */

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace overgen::telemetry {

/** The row stream of one simulated run (single-writer). Rows live in
 * one contiguous newline-separated byte buffer: emitters format
 * directly into it via beginRow()/endRow(), so sampling costs no
 * per-row allocation (amortized buffer growth only — the
 * bench/micro_sim overhead guard holds the whole instrumentation
 * path under 3%). */
class TimelineRun
{
  public:
    explicit TimelineRun(std::string label) : tag(std::move(label)) {}

    /** Run label stamped into each row ("run"). */
    const std::string &label() const { return tag; }

    /** Start one row: append the serialized JSON to the returned
     * buffer, then call endRow(). No other beginRow() may intervene
     * (single-writer). */
    std::string &beginRow() { return buf; }

    /** Terminate the row begun by beginRow(). */
    void endRow() { buf += '\n'; }

    /** Append one pre-serialized JSON row (no trailing newline). */
    void
    append(const std::string &row)
    {
        buf += row;
        buf += '\n';
    }

    /** The raw newline-terminated row bytes. */
    const std::string &bytes() const { return buf; }

    /** The rows as individual lines (cold path: reports/tests). */
    std::vector<std::string> lines() const;

  private:
    std::string tag;
    std::string buf;
};

/** See file comment. */
class Timeline
{
  public:
    /**
     * Open the row stream for one run. The returned pointer is stable
     * for the Timeline's lifetime and owned by it. Safe to call
     * concurrently (one call per runBatch job).
     */
    TimelineRun *beginRun(const std::string &label);

    /** @return total rows sampled so far (requires no concurrent
     * append; test/report convenience). */
    size_t rowCount() const;

    /**
     * All rows as JSONL lines, runs ordered by (label, row content) —
     * a pure function of the sampled data, independent of the thread
     * count or completion order that produced it.
     */
    std::vector<std::string> lines() const;

    /** Write lines() to @p path (one row per line). */
    void writeTo(const std::string &path) const;

  private:
    /** Runs in sorted serialization order (see lines()). */
    std::vector<const TimelineRun *> sortedRuns() const;

    mutable std::mutex mutex;
    /** deque: stable element addresses across beginRun() growth. */
    std::deque<TimelineRun> runs;
};

} // namespace overgen::telemetry

#endif // OVERGEN_TELEMETRY_TIMELINE_H
