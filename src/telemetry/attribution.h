#ifndef OVERGEN_TELEMETRY_ATTRIBUTION_H
#define OVERGEN_TELEMETRY_ATTRIBUTION_H

/**
 * @file
 * Model-vs-simulator bottleneck attribution. The DSE trusts the
 * analytical bottleneck model (paper Eq. 1-2) to rank designs; the
 * cycle-level simulator is ground truth. This report aggregates
 * simulated stall/traffic counters per kernel into a compute- vs
 * memory-bound classification and cross-checks it against the model's
 * predicted limiting level, flagging kernels where the two disagree —
 * a standing correctness check on the model.
 *
 * Inputs are plain numbers (no sim/model types) so this layer stays
 * below both engines; telemetry/bridge.h converts their result
 * structs.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"

namespace overgen::telemetry {

/** Simulated + predicted quantities for one kernel run. */
struct KernelObservation
{
    std::string kernel;
    uint64_t cycles = 0;
    int tiles = 1;
    /** Fabric stall cycles summed over tiles (inputs not ready or
     * outputs backed up — i.e. waiting on the memory system). */
    uint64_t fabricStallCycles = 0;
    /** Total DRAM traffic (read + written bytes). */
    uint64_t dramBytes = 0;
    /** Aggregate DRAM bandwidth, bytes/cycle over all channels. */
    double dramBandwidthBytes = 0.0;
    /** LLC-side traffic (NoC bytes into the banked L2). */
    uint64_t l2Bytes = 0;
    /** Aggregate L2 bandwidth, bytes/cycle over all banks. */
    double l2BandwidthBytes = 0.0;
    uint64_t mshrStallCycles = 0;
    double simIpc = 0.0;
    /** Analytical prediction (PerfBreakdown::bottleneck / ipc). */
    std::string modelBottleneck;
    double modelIpc = 0.0;
};

/** Attribution of one kernel. */
struct KernelAttribution
{
    std::string kernel;
    uint64_t cycles = 0;
    double stallFraction = 0.0;      //!< stalls / (tiles * cycles)
    double dramUtilization = 0.0;    //!< achieved / peak DRAM bytes
    double l2Utilization = 0.0;      //!< achieved / peak L2 bytes
    double mshrStallFraction = 0.0;
    double simIpc = 0.0;
    double modelIpc = 0.0;
    std::string simClass;            //!< "compute" | "memory"
    std::string modelClass;          //!< "compute" | "memory"
    std::string modelBottleneck;     //!< raw model level name
    bool agree = false;
};

/** The aggregated report. */
struct AttributionReport
{
    std::vector<KernelAttribution> kernels;

    /** @return the kernels where simulator and model disagree. */
    std::vector<std::string> disagreements() const;
    Json toJson() const;
    /** @return a printable table plus the disagreement list. */
    std::string format() const;
};

/**
 * @return "compute" or "memory" for a model bottleneck level name:
 * "dram" and "l2" are bandwidth-bound, everything else ("compute",
 * "fabric", "spad" — on-tile limits) is compute-bound.
 */
std::string modelClassOf(const std::string &bottleneck);

/** Classify one kernel from its simulated counters. */
KernelAttribution attributeKernel(const KernelObservation &obs);

/** Attribute every observation and assemble the report. */
AttributionReport buildReport(
    const std::vector<KernelObservation> &observations);

} // namespace overgen::telemetry

#endif // OVERGEN_TELEMETRY_ATTRIBUTION_H
