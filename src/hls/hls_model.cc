#include "hls/hls_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "compiler/reuse.h"

namespace overgen::hls {

namespace {

/**
 * Whether the kernel carries a dependence through the innermost loop:
 * a store whose address does not move with the innermost induction
 * variable (a reduction), whose value chain the pipeline must wait on.
 */
bool
hasInnerReduction(const wl::KernelSpec &spec)
{
    size_t inner = spec.loops.size() - 1;
    for (const wl::AccessSpec &access : spec.accesses) {
        if (!access.isWrite)
            continue;
        int64_t coeff = inner < access.coeffs.size()
                            ? access.coeffs[inner]
                            : 0;
        if (coeff == 0)
            return true;
    }
    return false;
}

/** Largest innermost-loop access stride (elements). */
int64_t
maxInnerStride(const wl::KernelSpec &spec)
{
    int64_t stride = 1;
    size_t inner = spec.loops.size() - 1;
    for (const wl::AccessSpec &access : spec.accesses) {
        if (inner < access.coeffs.size())
            stride = std::max(stride, std::abs(access.coeffs[inner]));
    }
    return stride;
}

/** Count of distinct window rows (same-coefficient tap groups). */
int
windowRowCount(const wl::KernelSpec &spec)
{
    // Overlapping unit-stride taps on one array: rows = taps / 3-ish;
    // approximate by the square root of the tap count.
    int taps = 0;
    for (const wl::AccessSpec &access : spec.accesses) {
        if (!access.isWrite && !access.indirect())
            ++taps;
    }
    return std::max(1, static_cast<int>(std::round(std::sqrt(taps))));
}

} // namespace

int
initiationInterval(const wl::KernelSpec &spec, bool tuned)
{
    const wl::CodePatterns &patterns = spec.patterns;
    int ii = 1;
    if (patterns.variableTripCount) {
        // Variable trips defeat loop flattening. When the innermost
        // loop also carries a reduction, the pipeline waits for the
        // carried op's latency (Table IV: cholesky 10, crs 4); plain
        // variable-trip control overhead costs two cycles (fft 2).
        int untuned = 2;
        if (hasInnerReduction(spec) &&
            dataTypeIsFloat(spec.dominantType())) {
            bool heavy = spec.opCount(Opcode::Div) > 0 &&
                         spec.opCount(Opcode::Sqrt) > 0;
            untuned = heavy ? 10 : 4;
        }
        // Tuning (guarded max-trip loops) halves the dependence cost.
        ii = std::max(ii, tuned ? std::max(1, untuned / 2) : untuned);
    } else if (patterns.smallStrideAccess && !tuned) {
        // Un-coalescible strided BRAM/DRAM access serializes the
        // pipeline (Table IV: bgr2grey 9, channel-ext 8, blur 6,
        // stencil-3d 6): each strided load costs its stride in bank
        // conflicts, overlapping window rows conflict pairwise.
        int64_t stride = maxInnerStride(spec);
        int penalty;
        if (stride > 1) {
            int strided_reads = 0;
            size_t inner = spec.loops.size() - 1;
            for (const wl::AccessSpec &access : spec.accesses) {
                if (!access.isWrite &&
                    inner < access.coeffs.size() &&
                    std::abs(access.coeffs[inner]) > 1) {
                    ++strided_reads;
                }
            }
            penalty = static_cast<int>(stride) *
                      std::max(strided_reads, 2);
        } else {
            penalty = 2 * windowRowCount(spec);
        }
        ii = std::max(ii, std::min(penalty, 12));
    }
    return ii;
}

HlsPerf
estimatePerf(const wl::KernelSpec &spec, bool tuned,
             const HlsConfig &config)
{
    HlsPerf perf;
    perf.ii = initiationInterval(spec, tuned);

    double iterations =
        static_cast<double>(spec.totalIterations());
    int unroll = std::max(1, config.unroll);
    // Pipeline fill per innermost-loop entry.
    double outer = 1.0;
    for (size_t d = 0; d + 1 < spec.loops.size(); ++d)
        outer *= std::max<int64_t>(spec.loops[d].tripBase, 1);
    perf.computeCycles =
        iterations * perf.ii / unroll + outer * 8.0 + 500.0;

    // Memory: arrays that fit on-chip are transferred once
    // (footprint); streaming arrays pay full traffic. Sliding-window
    // kernels keep overlapped rows in line buffers.
    double bytes = 0.0;
    for (size_t i = 0; i < spec.accesses.size(); ++i) {
        auto analysis = compiler::analyzeAccess(spec,
                                                static_cast<int>(i));
        const wl::ArraySpec &array =
            spec.arrayByName(spec.accesses[i].array);
        double elem = dataTypeBytes(array.type);
        double traffic =
            static_cast<double>(analysis.trafficElements) * elem;
        double footprint =
            static_cast<double>(array.sizeBytes());
        double moved;
        if (footprint <= 1024.0 * 1024.0) {
            moved = std::min(traffic, footprint);
        } else if (spec.patterns.slidingWindow) {
            moved = footprint;  // each element read once (line buffer)
        } else {
            moved = traffic;
        }
        // Untuned small-stride access defeats burst coalescing: each
        // strided element drags its neighbors across the AXI bus.
        if (spec.patterns.smallStrideAccess && !tuned) {
            size_t inner = spec.loops.size() - 1;
            int64_t stride = inner < spec.accesses[i].coeffs.size()
                                 ? std::abs(
                                       spec.accesses[i].coeffs[inner])
                                 : 1;
            if (stride > 1)
                moved *= std::min<double>(static_cast<double>(stride),
                                          4.0);
        }
        bytes += moved;
    }
    // AXI burst width 64B/cycle per channel at the kernel clock.
    perf.memoryCycles = bytes / (64.0 * config.dramChannels);
    perf.cycles = std::max(perf.computeCycles, perf.memoryCycles);
    perf.memoryBound = perf.memoryCycles > perf.computeCycles;
    perf.seconds = perf.cycles / (config.clockMhz * 1e6);
    return perf;
}

model::Resources
estimateResources(const wl::KernelSpec &spec, const HlsConfig &config)
{
    model::Resources r;
    // Control/state machine + AXI interfaces.
    r.lut = 9000.0;
    r.ff = 12000.0;
    r.bram = 12.0;
    int unroll = std::max(1, config.unroll);
    for (const wl::OpSpec &op : spec.ops) {
        bool flt = dataTypeIsFloat(op.type);
        int eb = dataTypeBytes(op.type);
        double lut = 0.0, dsp = 0.0;
        switch (op.op) {
          case Opcode::Mul:
            lut = flt ? 80.0 : 20.0;
            dsp = flt ? (eb == 8 ? 8.0 : 3.0)
                      : std::max(1.0, eb / 4.0);
            break;
          case Opcode::Div:
            lut = flt ? (eb == 8 ? 3200.0 : 1800.0) : 40.0 * eb;
            dsp = flt ? 4.0 : 0.0;
            break;
          case Opcode::Sqrt:
            lut = flt ? (eb == 8 ? 2800.0 : 1500.0) : 30.0 * eb;
            break;
          default:
            lut = flt ? 200.0 : 10.0 * eb;
            dsp = flt ? 2.0 : 0.0;
        }
        r.lut += lut * unroll;
        r.dsp += dsp * unroll;
    }
    // Array partitioning for on-chip buffers: one BRAM bank slice per
    // unroll lane per on-chip array.
    for (const wl::ArraySpec &array : spec.arrays) {
        if (array.sizeBytes() <= 1024 * 1024) {
            r.bram += std::max<double>(
                std::ceil(array.sizeBytes() / 4096.0),
                unroll);
        }
    }
    r.ff += 1.1 * r.lut;
    return r;
}

double
synthesisHours(const model::Resources &resources)
{
    // Empirical shape: a small kernel synthesizes in ~25 min; P&R time
    // grows superlinearly with logic utilization on the VU9P.
    double util = resources.lut / 1182240.0;
    return 0.4 + 6.0 * util + 18.0 * util * util;
}

} // namespace overgen::hls
