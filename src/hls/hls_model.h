#ifndef OVERGEN_HLS_HLS_MODEL_H
#define OVERGEN_HLS_HLS_MODEL_H

/**
 * @file
 * HLS performance/resource model standing in for Merlin + Vivado HLS
 * (see DESIGN.md "Substitutions"). Reproduces the initiation-interval
 * behavior of paper Table IV: variable loop trip counts and small-
 * stride access patterns inflate the II of untuned kernels; manual
 * kernel tuning restores II=1 (or halves it for loop-carried float
 * dependences); sliding-window kernels get line-buffer reuse.
 */

#include "model/resources.h"
#include "workloads/kernelspec.h"

namespace overgen::hls {

/** One HLS design point (pragma configuration). */
struct HlsConfig
{
    /** Innermost-loop unroll / array-partition factor. */
    int unroll = 1;
    /** Kernel clock after P&R, MHz. */
    double clockMhz = 250.0;
    /** DRAM channels enabled. */
    int dramChannels = 1;
};

/** Performance estimate of one HLS design point. */
struct HlsPerf
{
    int ii = 1;
    double computeCycles = 0.0;
    double memoryCycles = 0.0;
    double cycles = 0.0;
    double seconds = 0.0;
    bool memoryBound = false;
};

/**
 * Initiation interval of the pipelined innermost loop (paper Table IV).
 * @p tuned selects the manually kernel-tuned source variant.
 */
int initiationInterval(const wl::KernelSpec &spec, bool tuned);

/** Cycle/time estimate for @p spec at @p config. */
HlsPerf estimatePerf(const wl::KernelSpec &spec, bool tuned,
                     const HlsConfig &config);

/** FPGA resources of the fixed-function pipeline at @p config. */
model::Resources estimateResources(const wl::KernelSpec &spec,
                                   const HlsConfig &config);

/**
 * Out-of-context synthesis + P&R wall-clock hours for one candidate —
 * the dominant cost of AutoDSE's exploration (paper Fig. 15).
 */
double synthesisHours(const model::Resources &resources);

} // namespace overgen::hls

#endif // OVERGEN_HLS_HLS_MODEL_H
