#include "hls/autodse.h"

#include <tuple>

#include "common/logging.h"
#include "workloads/suites.h"

namespace overgen::hls {

AutoDseResult
runAutoDse(const wl::KernelSpec &original, bool tuned,
           const AutoDseOptions &options)
{
    // The tuned flag is threaded through the model (the II analysis
    // needs the original patterns to know what tuning repaired).
    const wl::KernelSpec &spec = original;
    AutoDseResult result;
    result.kernel = original.name;
    result.tuned = tuned;

    model::FpgaDevice device = model::FpgaDevice::xcvu9p();

    auto evaluate = [&](int unroll) {
        HlsConfig config;
        config.unroll = unroll;
        config.clockMhz = options.clockMhz;
        config.dramChannels = options.dramChannels;
        HlsPerf perf = estimatePerf(spec, tuned, config);
        model::Resources res = estimateResources(spec, config);
        return std::make_tuple(config, perf, res);
    };

    if (options.useDatabase && spec.patterns.inPrebuiltDatabase) {
        // Database hit: the best configuration is known; only the
        // final synthesis runs (paper Q2 "Prebuilt Database").
        int best_unroll = 1;
        double best_cycles = 1e30;
        for (int u = 1; u <= options.maxUnroll; u *= 2) {
            auto [config, perf, res] = evaluate(u);
            if (device.worstUtilization(res) >
                options.budgetFraction) {
                break;
            }
            if (perf.cycles < best_cycles) {
                best_cycles = perf.cycles;
                best_unroll = u;
            }
        }
        auto [config, perf, res] = evaluate(best_unroll);
        result.config = config;
        result.perf = perf;
        result.resources = res;
        result.candidatesEvaluated = 0;
        result.fromDatabase = true;
        result.dseHours = 0.0;
        result.synthHours = synthesisHours(res);
        return result;
    }

    // Bottleneck-guided exploration: grow the unroll while the
    // estimated cycles improve meaningfully and the design fits.
    int unroll = 1;
    auto [best_config, best_perf, best_res] = evaluate(unroll);
    result.candidatesEvaluated = 1;
    result.dseHours = synthesisHours(best_res);
    while (unroll * 2 <= options.maxUnroll) {
        auto [config, perf, res] = evaluate(unroll * 2);
        ++result.candidatesEvaluated;
        result.dseHours += synthesisHours(res);
        if (device.worstUtilization(res) > options.budgetFraction)
            break;
        if (perf.cycles > best_perf.cycles * 0.97) {
            // Memory bound or saturated: AutoDSE stops growing this
            // parameter (it favors fewer resources, paper Q4).
            if (perf.cycles < best_perf.cycles) {
                best_config = config;
                best_perf = perf;
                best_res = res;
            }
            break;
        }
        best_config = config;
        best_perf = perf;
        best_res = res;
        unroll *= 2;
    }
    result.config = best_config;
    result.perf = best_perf;
    result.resources = best_res;
    result.synthHours = synthesisHours(best_res);
    return result;
}

} // namespace overgen::hls
