#ifndef OVERGEN_HLS_AUTODSE_H
#define OVERGEN_HLS_AUTODSE_H

/**
 * @file
 * AutoDSE-style bottleneck-guided exploration of HLS pragma
 * configurations (paper baseline, Sohrabizadeh et al.): repeatedly
 * grow the parameter that relieves the current bottleneck, evaluating
 * candidates with the HLS model; the exploration cost is dominated by
 * per-candidate synthesis time. Workloads present in the pre-built
 * database (gemm) skip exploration.
 */

#include "hls/hls_model.h"

namespace overgen::hls {

/** Exploration options. */
struct AutoDseOptions
{
    double clockMhz = 250.0;
    int maxUnroll = 64;
    /** Resource budget fraction AutoDSE targets. */
    double budgetFraction = 0.8;
    int dramChannels = 1;
    /** Honor the pre-built best-config database (paper Q2). */
    bool useDatabase = true;
};

/** Final chosen design plus exploration cost. */
struct AutoDseResult
{
    std::string kernel;
    bool tuned = false;
    HlsConfig config;
    HlsPerf perf;
    model::Resources resources;
    int candidatesEvaluated = 0;
    /** Exploration time (candidate synthesis runs). */
    double dseHours = 0.0;
    /** Final bitstream synthesis + P&R. */
    double synthHours = 0.0;
    bool fromDatabase = false;
};

/**
 * Run AutoDSE for one kernel. @p tuned selects the manually tuned
 * source (paper Q2 evaluates both).
 */
AutoDseResult runAutoDse(const wl::KernelSpec &spec, bool tuned,
                         const AutoDseOptions &options = {});

} // namespace overgen::hls

#endif // OVERGEN_HLS_AUTODSE_H
