#include "workloads/suites.h"

#include "common/logging.h"

namespace overgen::wl {

namespace {

/** Shorthand for a read access. */
AccessSpec
read(const std::string &array, std::vector<int64_t> coeffs,
     int64_t offset = 0)
{
    AccessSpec acc;
    acc.array = array;
    acc.coeffs = std::move(coeffs);
    acc.offset = offset;
    return acc;
}

/** Shorthand for a write access. */
AccessSpec
write(const std::string &array, std::vector<int64_t> coeffs,
      int64_t offset = 0)
{
    AccessSpec acc = read(array, std::move(coeffs), offset);
    acc.isWrite = true;
    return acc;
}

/** Shorthand for an indirect read a[idx[affine]]. */
AccessSpec
readIndirect(const std::string &array, const std::string &index_array,
             std::vector<int64_t> coeffs, int64_t offset = 0)
{
    AccessSpec acc = read(array, std::move(coeffs), offset);
    acc.indexArray = index_array;
    return acc;
}

OpSpec
op(Opcode opcode, DataType type, Operand lhs, Operand rhs,
   int write_access = -1)
{
    return OpSpec{ opcode, type, lhs, rhs, write_access };
}

} // namespace

KernelSpec
makeFir(int n, int taps)
{
    // Tiled FIR as in paper Fig. 5: c[io*T+ii] += a[io*T+ii+j] * b[j],
    // io outer tile loop, j filter loop, ii inner tile loop (T = 32).
    constexpr int tile = 32;
    OG_ASSERT(n % tile == 0, "fir size must be a multiple of ", tile);
    KernelSpec k;
    k.name = "fir";
    k.suite = Suite::Dsp;
    k.loops = { { "io", n / tile, {}, false },
                { "j", taps, {}, false },
                { "ii", tile, {}, false } };
    k.arrays = { { "a", DataType::F64, n + taps, false, "" },
                 { "b", DataType::F64, taps, false, "" },
                 { "c", DataType::F64, n, false, "" } };
    k.accesses = {
        read("a", { tile, 1, 1 }),   // 0: a[io*T + j + ii]
        read("b", { 0, 1, 0 }),      // 1: b[j] — stationary over ii
        read("c", { tile, 0, 1 }),   // 2: c[io*T + ii] — recurrent over j
        write("c", { tile, 0, 1 }),  // 3
    };
    k.ops = {
        op(Opcode::Mul, DataType::F64, Operand::access(0),
           Operand::access(1)),
        op(Opcode::Add, DataType::F64, Operand::access(2), Operand::op(0),
           3),
    };
    k.scratchpadHints = { "a" };
    k.maxUnroll = 8;
    return k;
}

KernelSpec
makeMm(int n)
{
    // Untiled matrix multiply, loop order (i, k, j) so the innermost j
    // vectorizes and c is recurrent across k: c[i][j] += a[i][k]*b[k][j].
    KernelSpec k;
    k.name = "mm";
    k.suite = Suite::Dsp;
    k.loops = { { "i", n, {}, false },
                { "k", n, {}, false },
                { "j", n, {}, false } };
    int64_t nn = static_cast<int64_t>(n) * n;
    k.arrays = { { "a", DataType::F64, nn, false, "" },
                 { "b", DataType::F64, nn, false, "" },
                 { "c", DataType::F64, nn, false, "" } };
    k.accesses = {
        read("a", { n, 1, 0 }),   // 0: a[i*n + k] — stationary over j
        read("b", { 0, n, 1 }),   // 1: b[k*n + j]
        read("c", { n, 0, 1 }),   // 2: c[i*n + j] — recurrent over k
        write("c", { n, 0, 1 }),  // 3
    };
    k.ops = {
        op(Opcode::Mul, DataType::F64, Operand::access(0),
           Operand::access(1)),
        op(Opcode::Add, DataType::F64, Operand::access(2), Operand::op(0),
           3),
    };
    k.scratchpadHints = { "b" };
    k.maxUnroll = 8;
    return k;
}

KernelSpec
makeCholesky(int n)
{
    // Right-looking update sweep with triangular (variable) trip counts:
    // for k, for i < n-k, for j < n-k:
    //   A[(k+i)*n + (k+j)] -= (A[(k+i)*n + k] * A[(k+j)*n + k]) / d[k]
    // followed (modeled in-DAG) by a sqrt-normalized diagonal term.
    KernelSpec k;
    k.name = "cholesky";
    k.suite = Suite::Dsp;
    k.loops = { { "k", n, {}, false },
                { "i", n, { -1 }, true },
                { "j", n, { -1, 0 }, true } };
    int64_t nn = static_cast<int64_t>(n) * n;
    k.arrays = { { "A", DataType::F64, nn, false, "" },
                 { "d", DataType::F64, n, false, "" } };
    k.accesses = {
        read("A", { n + 1, n, 1 }),   // 0: A[(k+i)*n + (k+j)]
        read("A", { n + 1, n, 0 }),   // 1: A[(k+i)*n + k]
        read("A", { n + 1, 0, 1 }),   // 2: A[(k+j)*n + k]
        read("d", { 1, 0, 0 }),       // 3: d[k] — stationary
        write("A", { n + 1, n, 1 }),  // 4
        write("d", { 1, 0, 0 }),      // 5
    };
    // The update is clamped (Min/Max) so repeated application stays
    // bounded: the simulator's results must compare exactly against
    // the interpreter over tens of thousands of iterations.
    k.ops = {
        op(Opcode::Mul, DataType::F64, Operand::access(1),
           Operand::access(2)),                                   // 0
        op(Opcode::Div, DataType::F64, Operand::op(0),
           Operand::access(3)),                                   // 1
        op(Opcode::Sub, DataType::F64, Operand::access(0),
           Operand::op(1)),                                       // 2
        op(Opcode::Min, DataType::F64, Operand::op(2),
           Operand::imm64(1024.0)),                               // 3
        op(Opcode::Max, DataType::F64, Operand::op(3),
           Operand::imm64(-1024.0), 4),                           // 4
        op(Opcode::Mul, DataType::F64, Operand::access(3),
           Operand::access(3)),                                   // 5
        op(Opcode::Sqrt, DataType::F64, Operand::op(5),
           Operand::imm64(0)),                                    // 6
        op(Opcode::Div, DataType::F64, Operand::op(6),
           Operand::imm64(1.0), 5),                               // 7
    };
    k.patterns.variableTripCount = true;
    k.maxUnroll = 4;
    return k;
}

KernelSpec
makeSolver(int n)
{
    // Forward triangular solve: x[i] = (x[i] - L[i*n+j]*x[j]) / d[i],
    // inner loop j runs 0..i (triangular, but HLS-friendly fixed form).
    KernelSpec k;
    k.name = "solver";
    k.suite = Suite::Dsp;
    k.loops = { { "i", n, {}, false }, { "j", 1, { 1 }, false } };
    int64_t nn = static_cast<int64_t>(n) * n;
    k.arrays = { { "L", DataType::F64, nn, false, "" },
                 { "x", DataType::F64, n, false, "" },
                 { "d", DataType::F64, n, false, "" } };
    k.accesses = {
        read("L", { n, 1 }),   // 0: L[i*n + j]
        read("x", { 0, 1 }),   // 1: x[j]
        read("x", { 1, 0 }),   // 2: x[i] — recurrent over j
        read("d", { 1, 0 }),   // 3: d[i] — stationary over j
        write("x", { 1, 0 }),  // 4
    };
    k.ops = {
        op(Opcode::Mul, DataType::F64, Operand::access(0),
           Operand::access(1)),
        op(Opcode::Sub, DataType::F64, Operand::access(2),
           Operand::op(0)),
        op(Opcode::Div, DataType::F64, Operand::op(1), Operand::access(3),
           4),
    };
    k.maxUnroll = 4;
    return k;
}

KernelSpec
makeFft(int log2n)
{
    // Radix-2 butterfly sweep, f32 complex as split re/im arrays. The
    // per-stage stride schedule is folded into an even/odd butterfly
    // encoding (self-consistent for functional verification); trip
    // counts vary per stage in the real code, hence the variable flag.
    int n = 1 << log2n;
    int half = n / 2;
    KernelSpec k;
    k.name = "fft";
    k.suite = Suite::Dsp;
    k.loops = { { "s", log2n, {}, true }, { "b", half, {}, false } };
    k.arrays = { { "re", DataType::F32, n, false, "" },
                 { "im", DataType::F32, n, false, "" },
                 { "twr", DataType::F32, half, false, "" },
                 { "twi", DataType::F32, half, false, "" } };
    k.accesses = {
        read("re", { 0, 2 }),      // 0: even re
        read("re", { 0, 2 }, 1),   // 1: odd re
        read("im", { 0, 2 }),      // 2: even im
        read("im", { 0, 2 }, 1),   // 3: odd im
        read("twr", { 0, 1 }),     // 4
        read("twi", { 0, 1 }),     // 5
        write("re", { 0, 2 }),     // 6
        write("re", { 0, 2 }, 1),  // 7
        write("im", { 0, 2 }),     // 8
        write("im", { 0, 2 }, 1),  // 9
    };
    // t = w * odd (complex), even' = even + t, odd' = even - t.
    k.ops = {
        op(Opcode::Mul, DataType::F32, Operand::access(4),
           Operand::access(1)),                                   // 0
        op(Opcode::Mul, DataType::F32, Operand::access(5),
           Operand::access(3)),                                   // 1
        op(Opcode::Sub, DataType::F32, Operand::op(0),
           Operand::op(1)),                                       // 2: t_re
        op(Opcode::Mul, DataType::F32, Operand::access(4),
           Operand::access(3)),                                   // 3
        op(Opcode::Mul, DataType::F32, Operand::access(5),
           Operand::access(1)),                                   // 4
        op(Opcode::Add, DataType::F32, Operand::op(3),
           Operand::op(4)),                                       // 5: t_im
        op(Opcode::Add, DataType::F32, Operand::access(0),
           Operand::op(2), 6),                                    // 6
        op(Opcode::Sub, DataType::F32, Operand::access(0),
           Operand::op(2), 7),                                    // 7
        op(Opcode::Add, DataType::F32, Operand::access(2),
           Operand::op(5), 8),                                    // 8
        op(Opcode::Sub, DataType::F32, Operand::access(2),
           Operand::op(5), 9),                                    // 9
    };
    k.patterns.variableTripCount = true;
    k.patterns.smallStrideAccess = true;
    k.tuning.peelTail = true;
    k.maxUnroll = 8;
    return k;
}

KernelSpec
makeStencil3d(int n, int steps)
{
    // 7-point 3D stencil over an (n+2)^3 grid with halo, `steps` sweeps.
    int g = n + 2;
    KernelSpec k;
    k.name = "stencil-3d";
    k.suite = Suite::MachSuite;
    k.loops = { { "t", steps, {}, false },
                { "i", n, {}, false },
                { "j", n, {}, false },
                { "kk", n, {}, false } };
    int64_t cells = static_cast<int64_t>(g) * g * g;
    k.arrays = { { "in", DataType::I64, cells, false, "" },
                 { "out", DataType::I64, cells, false, "" } };
    int64_t gg = static_cast<int64_t>(g) * g;
    int64_t center = gg + g + 1;
    auto at = [&](int64_t delta) {
        return read("in", { 0, gg, g, 1 }, center + delta);
    };
    k.accesses = {
        at(0),                                       // 0: center
        at(-1), at(+1),                              // 1,2: x neighbors
        at(-g), at(+g),                              // 3,4: y neighbors
        at(-gg), at(+gg),                            // 5,6: z neighbors
        write("out", { 0, gg, g, 1 }, center),       // 7
    };
    k.ops = {
        op(Opcode::Add, DataType::I64, Operand::access(1),
           Operand::access(2)),                                   // 0
        op(Opcode::Add, DataType::I64, Operand::access(3),
           Operand::access(4)),                                   // 1
        op(Opcode::Add, DataType::I64, Operand::access(5),
           Operand::access(6)),                                   // 2
        op(Opcode::Add, DataType::I64, Operand::op(0),
           Operand::op(1)),                                       // 3
        op(Opcode::Add, DataType::I64, Operand::op(2),
           Operand::op(3)),                                       // 4: sum6
        op(Opcode::Mul, DataType::I64, Operand::op(4),
           Operand::imm64(2)),                                    // 5
        op(Opcode::Mul, DataType::I64, Operand::access(0),
           Operand::imm64(3)),                                    // 6
        op(Opcode::Add, DataType::I64, Operand::op(5), Operand::op(6),
           7),                                                    // 7
    };
    k.patterns.smallStrideAccess = true;
    k.maxUnroll = 8;
    return k;
}

KernelSpec
makeCrs(int rows, int nnz_per_row)
{
    // CSR sparse matrix-vector multiply with per-row variable nonzero
    // counts (encoded at the mean nnz; the variability drives the HLS
    // II penalty): y[i] += val[i*z+j] * x[col[i*z+j]].
    KernelSpec k;
    k.name = "crs";
    k.suite = Suite::MachSuite;
    k.loops = { { "i", rows, {}, false },
                { "j", nnz_per_row, {}, true } };
    int64_t nnz = static_cast<int64_t>(rows) * nnz_per_row;
    k.arrays = { { "val", DataType::F64, nnz, false, "" },
                 { "col", DataType::I64, nnz, true, "x" },
                 { "x", DataType::F64, rows, false, "" },
                 { "rowptr", DataType::I64, rows + 1, true, "val" },
                 { "y", DataType::F64, rows, false, "" } };
    k.accesses = {
        read("val", { nnz_per_row, 1 }),                // 0
        readIndirect("x", "col", { nnz_per_row, 1 }),   // 1: x[col[..]]
        read("y", { 1, 0 }),                            // 2: recurrent
        write("y", { 1, 0 }),                           // 3
    };
    k.ops = {
        op(Opcode::Mul, DataType::F64, Operand::access(0),
           Operand::access(1)),
        op(Opcode::Add, DataType::F64, Operand::access(2), Operand::op(0),
           3),
    };
    k.patterns.variableTripCount = true;
    k.maxUnroll = 4;
    return k;
}

KernelSpec
makeGemm(int n)
{
    // Blocked integer GEMM (MachSuite "gemm"); in AutoDSE's pre-built
    // database, and OverGen tunes it by unrolling across two inner
    // dimensions (paper Q2).
    KernelSpec k = makeMm(n);
    k.name = "gemm";
    k.suite = Suite::MachSuite;
    for (auto &arr : k.arrays)
        arr.type = DataType::I64;
    for (auto &o : k.ops)
        o.type = DataType::I64;
    k.patterns.inPrebuiltDatabase = true;
    k.tuning.unroll2d = true;
    k.maxUnroll = 8;
    return k;
}

KernelSpec
makeStencil2d(int n, int steps)
{
    // 3x3 convolution stencil over an (n+2)^2 grid, `steps` sweeps,
    // fully unrolled window (9 coefficient taps).
    int g = n + 2;
    KernelSpec k;
    k.name = "stencil-2d";
    k.suite = Suite::MachSuite;
    k.loops = { { "t", steps, {}, false },
                { "i", n, {}, false },
                { "j", n, {}, false } };
    int64_t cells = static_cast<int64_t>(g) * g;
    k.arrays = { { "in", DataType::I64, cells, false, "" },
                 { "coef", DataType::I64, 9, false, "" },
                 { "out", DataType::I64, cells, false, "" } };
    for (int ki = 0; ki < 3; ++ki) {
        for (int kj = 0; kj < 3; ++kj) {
            k.accesses.push_back(read(
                "in", { 0, g, 1 },
                static_cast<int64_t>(ki) * g + kj));  // 0..8
        }
    }
    for (int t = 0; t < 9; ++t)
        k.accesses.push_back(read("coef", { 0, 0, 0 }, t));  // 9..17
    k.accesses.push_back(write("out", { 0, g, 1 }, g + 1));  // 18
    for (int t = 0; t < 9; ++t) {
        k.ops.push_back(op(Opcode::Mul, DataType::I64, Operand::access(t),
                           Operand::access(9 + t)));  // ops 0..8
    }
    k.ops.push_back(op(Opcode::Add, DataType::I64, Operand::op(0),
                       Operand::op(1)));  // 9
    for (int t = 2; t < 9; ++t) {
        k.ops.push_back(op(Opcode::Add, DataType::I64,
                           Operand::op(static_cast<int>(k.ops.size()) - 1),
                           Operand::op(t)));
    }
    k.ops.back().writeAccess = 18;
    k.patterns.slidingWindow = true;
    k.tuning.unrollForOverlap = true;
    k.scratchpadHints = { "coef" };
    k.maxUnroll = 8;
    return k;
}

KernelSpec
makeEllpack(int rows, int nnz_per_row)
{
    // ELLPACK sparse matrix-vector multiply: fixed nnz per row, indirect
    // gather of x through the column-index array.
    KernelSpec k;
    k.name = "ellpack";
    k.suite = Suite::MachSuite;
    k.loops = { { "i", rows, {}, false },
                { "j", nnz_per_row, {}, false } };
    int64_t nnz = static_cast<int64_t>(rows) * nnz_per_row;
    k.arrays = { { "val", DataType::F64, nnz, false, "" },
                 { "ind", DataType::I64, nnz, true, "x" },
                 { "x", DataType::F64, rows, false, "" },
                 { "y", DataType::F64, rows, false, "" } };
    k.accesses = {
        read("val", { nnz_per_row, 1 }),               // 0
        readIndirect("x", "ind", { nnz_per_row, 1 }),  // 1
        read("y", { 1, 0 }),                           // 2: recurrent
        write("y", { 1, 0 }),                          // 3
    };
    k.ops = {
        op(Opcode::Mul, DataType::F64, Operand::access(0),
           Operand::access(1)),
        op(Opcode::Add, DataType::F64, Operand::access(2), Operand::op(0),
           3),
    };
    // x is broadcast-loaded into every tile's scratchpad (paper Q1
    // discusses the resulting bandwidth waste without multicast).
    k.scratchpadHints = { "x" };
    k.maxUnroll = 4;
    return k;
}

namespace {

/**
 * Common scaffolding for pointwise Vitis Vision kernels: a channel loop
 * over 4 planes and a flat pixel loop; all arrays i16 of 4*n*n elements.
 */
KernelSpec
visionPointwise(const std::string &name, int n,
                std::vector<std::string> inputs, bool has_output = true)
{
    KernelSpec k;
    k.name = name;
    k.suite = Suite::Vision;
    int64_t pixels = static_cast<int64_t>(n) * n;
    k.loops = { { "c", 4, {}, false }, { "p", pixels, {}, false } };
    for (const auto &in : inputs)
        k.arrays.push_back({ in, DataType::I16, 4 * pixels, false, "" });
    if (has_output) {
        k.arrays.push_back(
            { "dst", DataType::I16, 4 * pixels, false, "" });
    }
    for (const auto &in : inputs)
        k.accesses.push_back(read(in, { pixels, 1 }));
    if (has_output)
        k.accesses.push_back(write("dst", { pixels, 1 }));
    k.maxUnroll = 8;
    return k;
}

} // namespace

KernelSpec
makeChannelExtract(int n)
{
    // Extract one interleaved channel: dst[p] = src[4*p + c]. Pure data
    // movement (Table II: 0 compute ops) with small-stride reads.
    KernelSpec k;
    k.name = "channel-ext";
    k.suite = Suite::Vision;
    int64_t pixels = static_cast<int64_t>(n) * n;
    k.loops = { { "c", 4, {}, false }, { "p", pixels, {}, false } };
    k.arrays = { { "src", DataType::I16, 4 * pixels, false, "" },
                 { "dst", DataType::I16, 4 * pixels, false, "" } };
    k.accesses = {
        read("src", { 1, 4 }),           // src[c + 4*p]: stride 4
        write("dst", { pixels, 1 }),
    };
    k.ops = {
        op(Opcode::Add, DataType::I16, Operand::access(0),
           Operand::imm64(0), 1),  // move
    };
    k.patterns.smallStrideAccess = true;
    return k;
}

KernelSpec
makeBgr2Grey(int n)
{
    // grey = (29*B + 150*G + 77*R) / 256 over interleaved BGR triples:
    // stride-3 reads are the classic HLS small-stride hazard (Table IV).
    KernelSpec k;
    k.name = "bgr2grey";
    k.suite = Suite::Vision;
    int64_t pixels = static_cast<int64_t>(n) * n * 4;
    k.loops = { { "p", pixels, {}, false } };
    k.arrays = { { "src", DataType::I16, 3 * pixels, false, "" },
                 { "dst", DataType::I16, pixels, false, "" } };
    k.accesses = {
        read("src", { 3 }, 0),  // B
        read("src", { 3 }, 1),  // G
        read("src", { 3 }, 2),  // R
        write("dst", { 1 }),
    };
    k.ops = {
        op(Opcode::Mul, DataType::I16, Operand::access(0),
           Operand::imm64(29)),
        op(Opcode::Mul, DataType::I16, Operand::access(1),
           Operand::imm64(150)),
        op(Opcode::Mul, DataType::I16, Operand::access(2),
           Operand::imm64(77)),
        op(Opcode::Add, DataType::I16, Operand::op(0), Operand::op(1)),
        op(Opcode::Add, DataType::I16, Operand::op(2), Operand::op(3)),
        op(Opcode::Div, DataType::I16, Operand::op(4),
           Operand::imm64(256), 3),
    };
    k.patterns.smallStrideAccess = true;
    return k;
}

KernelSpec
makeBlur(int n)
{
    // 3x3 box blur with a fully expressed window (8 adds + 1 div per
    // pixel); sliding-window reuse favors the HLS line-buffer (Table IV)
    // and OverGen's manual overlap unrolling (Q2).
    int g = n + 2;
    KernelSpec k;
    k.name = "blur";
    k.suite = Suite::Vision;
    k.loops = { { "c", 4, {}, false },
                { "i", n, {}, false },
                { "j", n, {}, false } };
    int64_t plane = static_cast<int64_t>(g) * g;
    k.arrays = { { "src", DataType::I16, 4 * plane, false, "" },
                 { "dst", DataType::I16, 4 * plane, false, "" } };
    for (int ki = 0; ki < 3; ++ki) {
        for (int kj = 0; kj < 3; ++kj) {
            k.accesses.push_back(read(
                "src", { plane, g, 1 },
                static_cast<int64_t>(ki) * g + kj));  // 0..8
        }
    }
    k.accesses.push_back(write("dst", { plane, g, 1 }, g + 1));  // 9
    k.ops.push_back(op(Opcode::Add, DataType::I16, Operand::access(0),
                       Operand::access(1)));
    for (int t = 2; t < 9; ++t) {
        k.ops.push_back(op(Opcode::Add, DataType::I16,
                           Operand::op(static_cast<int>(k.ops.size()) - 1),
                           Operand::access(t)));
    }
    k.ops.push_back(op(Opcode::Div, DataType::I16,
                       Operand::op(static_cast<int>(k.ops.size()) - 1),
                       Operand::imm64(9), 9));
    k.patterns.smallStrideAccess = true;
    k.patterns.slidingWindow = true;
    k.tuning.unrollForOverlap = true;
    return k;
}

KernelSpec
makeAccumulate(int n)
{
    KernelSpec k = visionPointwise("accumulate", n, { "a", "b" });
    k.ops = {
        op(Opcode::Add, DataType::I16, Operand::access(0),
           Operand::access(1), 2),
    };
    return k;
}

KernelSpec
makeAccSqr(int n)
{
    KernelSpec k = visionPointwise("acc-sqr", n, { "a", "b" });
    k.ops = {
        op(Opcode::Mul, DataType::I16, Operand::access(1),
           Operand::access(1)),
        op(Opcode::Add, DataType::I16, Operand::access(0), Operand::op(0),
           2),
    };
    return k;
}

KernelSpec
makeVecMax(int n)
{
    KernelSpec k = visionPointwise("vecmax", n, { "a", "b" });
    k.ops = {
        op(Opcode::Max, DataType::I16, Operand::access(0),
           Operand::access(1), 2),
    };
    return k;
}

KernelSpec
makeAccWeight(int n)
{
    // dst = (alpha*a + (256-alpha)*b) / 256 with alpha = 77.
    KernelSpec k = visionPointwise("acc-weight", n, { "a", "b" });
    k.ops = {
        op(Opcode::Mul, DataType::I16, Operand::access(0),
           Operand::imm64(77)),
        op(Opcode::Mul, DataType::I16, Operand::access(1),
           Operand::imm64(179)),
        op(Opcode::Add, DataType::I16, Operand::op(0), Operand::op(1)),
        op(Opcode::Div, DataType::I16, Operand::op(2),
           Operand::imm64(256), 2),
    };
    return k;
}

KernelSpec
makeConvertBit(int n)
{
    KernelSpec k = visionPointwise("convert-bit", n, { "a" });
    k.ops = {
        op(Opcode::Shl, DataType::I16, Operand::access(0),
           Operand::imm64(4)),
        op(Opcode::Add, DataType::I16, Operand::op(0), Operand::imm64(8),
           1),
    };
    return k;
}

KernelSpec
makeDerivative(int n)
{
    // Horizontal Sobel-style derivative over a (n)^2 grid with halo.
    int g = n;
    int inner = n - 2;
    KernelSpec k;
    k.name = "derivative";
    k.suite = Suite::Vision;
    k.loops = { { "c", 4, {}, false },
                { "i", inner, {}, false },
                { "j", inner, {}, false } };
    int64_t plane = static_cast<int64_t>(g) * g;
    k.arrays = { { "src", DataType::I16, 4 * plane, false, "" },
                 { "dst", DataType::I16, 4 * plane, false, "" } };
    auto at = [&](int di, int dj) {
        return read("src", { plane, g, 1 },
                    static_cast<int64_t>(di) * g + dj);
    };
    k.accesses = {
        at(0, 0), at(0, 2),  // 0,1: top row
        at(1, 0), at(1, 2),  // 2,3: middle row (weight 2)
        at(2, 0), at(2, 2),  // 4,5: bottom row
        write("dst", { plane, g, 1 }, g + 1),  // 6
    };
    k.ops = {
        op(Opcode::Sub, DataType::I16, Operand::access(1),
           Operand::access(0)),
        op(Opcode::Sub, DataType::I16, Operand::access(3),
           Operand::access(2)),
        op(Opcode::Mul, DataType::I16, Operand::op(1), Operand::imm64(2)),
        op(Opcode::Sub, DataType::I16, Operand::access(5),
           Operand::access(4)),
        op(Opcode::Add, DataType::I16, Operand::op(0), Operand::op(2)),
        op(Opcode::Add, DataType::I16, Operand::op(3), Operand::op(4)),
        op(Opcode::Div, DataType::I16, Operand::op(5), Operand::imm64(4),
           6),
    };
    k.patterns.slidingWindow = true;
    k.tuning.unrollForOverlap = true;
    return k;
}

std::vector<KernelSpec>
dspSuite()
{
    return { makeCholesky(), makeFft(), makeFir(), makeSolver(),
             makeMm() };
}

std::vector<KernelSpec>
machSuite()
{
    return { makeStencil3d(), makeCrs(), makeGemm(), makeStencil2d(),
             makeEllpack() };
}

std::vector<KernelSpec>
visionSuite()
{
    return { makeChannelExtract(), makeBgr2Grey(), makeBlur(),
             makeAccumulate(), makeAccSqr(),      makeVecMax(),
             makeAccWeight(),     makeConvertBit(), makeDerivative() };
}

std::vector<KernelSpec>
allWorkloads()
{
    std::vector<KernelSpec> all = dspSuite();
    for (auto &k : machSuite())
        all.push_back(std::move(k));
    for (auto &k : visionSuite())
        all.push_back(std::move(k));
    return all;
}

std::vector<KernelSpec>
suiteWorkloads(Suite suite)
{
    switch (suite) {
      case Suite::Dsp:
        return dspSuite();
      case Suite::MachSuite:
        return machSuite();
      case Suite::Vision:
        return visionSuite();
    }
    OG_PANIC("unknown suite");
}

KernelSpec
workloadByName(const std::string &name)
{
    for (KernelSpec &k : allWorkloads()) {
        if (k.name == name)
            return k;
    }
    OG_FATAL("unknown workload '", name, "'");
}

KernelSpec
smallWorkloadByName(const std::string &name)
{
    if (name == "fir")
        return makeFir(128, 16);
    if (name == "mm")
        return makeMm(8);
    if (name == "cholesky")
        return makeCholesky(16);
    if (name == "solver")
        return makeSolver(16);
    if (name == "fft")
        return makeFft(7);
    if (name == "stencil-3d")
        return makeStencil3d(8, 2);
    if (name == "crs")
        return makeCrs(32, 4);
    if (name == "gemm")
        return makeGemm(8);
    if (name == "stencil-2d")
        return makeStencil2d(8, 2);
    if (name == "ellpack")
        return makeEllpack(32, 4);
    if (name == "channel-ext")
        return makeChannelExtract(16);
    if (name == "bgr2grey")
        return makeBgr2Grey(16);
    if (name == "blur")
        return makeBlur(16);
    if (name == "accumulate")
        return makeAccumulate(16);
    if (name == "acc-sqr")
        return makeAccSqr(16);
    if (name == "vecmax")
        return makeVecMax(16);
    if (name == "acc-weight")
        return makeAccWeight(16);
    if (name == "convert-bit")
        return makeConvertBit(16);
    if (name == "derivative")
        return makeDerivative(18);
    OG_FATAL("unknown workload '", name, "'");
}

KernelSpec
hlsTunedVariant(const KernelSpec &spec)
{
    KernelSpec tuned = spec;
    // Variable trip counts: replace with guarded max-trip loops
    // (paper Q2 "Variable Loop Trip Count" transformation).
    for (auto &loop : tuned.loops)
        loop.variable = false;
    tuned.patterns.variableTripCount = false;
    // Strided access: strength-reduced so the HLS tool coalesces.
    tuned.patterns.smallStrideAccess = false;
    return tuned;
}

} // namespace overgen::wl
