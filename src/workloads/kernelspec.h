#ifndef OVERGEN_WORKLOADS_KERNELSPEC_H
#define OVERGEN_WORKLOADS_KERNELSPEC_H

/**
 * @file
 * Structured workload descriptors. A KernelSpec encodes exactly what the
 * paper's Clang front end hands the decoupled-spatial compiler after
 * pragma processing: the loop nest, the arrays, the (possibly indirect)
 * affine accesses, and the per-iteration compute DAG — plus the
 * code-pattern flags that drive HLS initiation-interval analysis
 * (paper Table IV). See DESIGN.md "Substitutions".
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/opcode.h"
#include "common/types.h"

namespace overgen::wl {

/** Workload suite (paper §VII). */
enum class Suite : uint8_t {
    Dsp,        //!< REVEL DSP kernels
    MachSuite,  //!< MachSuite accelerator kernels
    Vision,     //!< Xilinx Vitis vision library kernels
};

/** @return printable suite name. */
std::string suiteName(Suite suite);

/**
 * One loop of a nest, outermost first. The trip count may be an affine
 * function of outer loop variables (triangular nests):
 * trip = tripBase + sum_d tripCoeff[d] * i_d over enclosing loops.
 */
struct LoopSpec
{
    std::string name;
    int64_t tripBase = 1;
    /** One coefficient per *enclosing* loop (may be empty). */
    std::vector<int64_t> tripCoeff;
    /** Trip count only known at runtime (HLS pattern, Table IV). */
    bool variable = false;
};

/** A named array with element type and size. */
struct ArraySpec
{
    std::string name;
    DataType type = DataType::I64;
    int64_t elements = 0;
    /** Index array: initialized with valid indices into `indexTarget`. */
    bool isIndex = false;
    std::string indexTarget;

    int64_t
    sizeBytes() const
    {
        return elements * dataTypeBytes(type);
    }
};

/**
 * An array access: element index is affine in the loop variables,
 * optionally routed through an index array (a[b[affine]]).
 */
struct AccessSpec
{
    std::string array;
    /** One coefficient per loop, outermost first. */
    std::vector<int64_t> coeffs;
    int64_t offset = 0;
    bool isWrite = false;
    /** When non-empty, the affine index reads this array and its value
     * (mod target size) indexes `array` instead. */
    std::string indexArray;

    /** @return whether this is an indirect access. */
    bool indirect() const { return !indexArray.empty(); }
};

/**
 * Operand of a compute op: a read access, a prior op, an immediate, or
 * a loop induction variable (lowered to the generate engine's affine
 * value sequences, paper §III-B).
 */
struct Operand
{
    enum class Kind : uint8_t { Access, Op, Imm, Index };

    Kind kind = Kind::Imm;
    int index = 0;    //!< access index, op index, or loop depth
    double imm = 0.0; //!< immediate payload

    static Operand access(int i) { return { Kind::Access, i, 0.0 }; }
    static Operand op(int i) { return { Kind::Op, i, 0.0 }; }
    static Operand imm64(double v) { return { Kind::Imm, 0, v }; }
    /** The value of the loop at depth @p loop (outermost = 0). */
    static Operand
    indexVar(int loop)
    {
        return { Kind::Index, loop, 0.0 };
    }
};

/**
 * One compute op of the per-iteration DAG. Unary ops use only `lhs`.
 * When `writeAccess` >= 0 the op's result is stored through that access.
 */
struct OpSpec
{
    Opcode op = Opcode::Add;
    DataType type = DataType::I64;
    Operand lhs;
    Operand rhs;
    int writeAccess = -1;
};

/** Code-pattern flags driving the HLS II model (paper Table IV, Q2). */
struct CodePatterns
{
    /** Variable loop trip counts / imperfect nest. */
    bool variableTripCount = false;
    /** Small-stride access the HLS tool cannot coalesce. */
    bool smallStrideAccess = false;
    /** Sliding-window reuse HLS can capture with a line buffer. */
    bool slidingWindow = false;
    /** Present in AutoDSE's pre-built configuration database. */
    bool inPrebuiltDatabase = false;
};

/** Source-level tuning applied to the OverGen version (paper Q2). */
struct OverGenTuning
{
    /** Peel trailing iterations so scalar tails coalesce (fft). */
    bool peelTail = false;
    /** Unroll across two inner dimensions for reuse (gemm). */
    bool unroll2d = false;
    /** Manual unroll to reuse overlapped window data (stencils/blur). */
    bool unrollForOverlap = false;
};

/**
 * A complete workload: loop nest, arrays, accesses, compute DAG, and the
 * modeling metadata (suite, patterns, tuning hooks).
 */
struct KernelSpec
{
    std::string name;
    Suite suite = Suite::Dsp;
    std::vector<LoopSpec> loops;
    std::vector<ArraySpec> arrays;
    std::vector<AccessSpec> accesses;
    std::vector<OpSpec> ops;
    CodePatterns patterns;
    OverGenTuning tuning;
    /** Maximum data-parallel unroll of the innermost loop. */
    int maxUnroll = 8;
    /** Arrays the pragma marks scratchpad-suitable (paper Fig. 5). */
    std::vector<std::string> scratchpadHints;

    /** @return the array spec by name; fatal when unknown. */
    const ArraySpec &arrayByName(const std::string &array_name) const;
    /** @return index of array by name; fatal when unknown. */
    int arrayIndex(const std::string &array_name) const;
    /** @return product of all (base) trip counts. */
    int64_t totalIterations() const;
    /** @return the dominant element data type of the kernel. */
    DataType dominantType() const;
    /** @return count of ops with opcode @p op in the per-iteration DAG. */
    int opCount(Opcode op) const;
};

} // namespace overgen::wl

#endif // OVERGEN_WORKLOADS_KERNELSPEC_H
