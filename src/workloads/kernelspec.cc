#include "workloads/kernelspec.h"

#include <map>

#include "common/logging.h"

namespace overgen::wl {

std::string
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::Dsp:
        return "dsp";
      case Suite::MachSuite:
        return "machsuite";
      case Suite::Vision:
        return "vision";
    }
    OG_PANIC("unknown suite");
}

const ArraySpec &
KernelSpec::arrayByName(const std::string &array_name) const
{
    for (const ArraySpec &a : arrays) {
        if (a.name == array_name)
            return a;
    }
    OG_FATAL("kernel '", name, "' has no array '", array_name, "'");
}

int
KernelSpec::arrayIndex(const std::string &array_name) const
{
    for (size_t i = 0; i < arrays.size(); ++i) {
        if (arrays[i].name == array_name)
            return static_cast<int>(i);
    }
    OG_FATAL("kernel '", name, "' has no array '", array_name, "'");
}

int64_t
KernelSpec::totalIterations() const
{
    // For affine (triangular) trips this uses the base trip, i.e. an
    // upper bound consistent with the HLS max-trip transformation.
    int64_t total = 1;
    for (const LoopSpec &loop : loops)
        total *= std::max<int64_t>(loop.tripBase, 1);
    return total;
}

DataType
KernelSpec::dominantType() const
{
    std::map<DataType, int> votes;
    for (const OpSpec &op : ops)
        ++votes[op.type];
    if (votes.empty())
        return DataType::I64;
    DataType best = votes.begin()->first;
    int best_count = 0;
    for (auto [type, count] : votes) {
        if (count > best_count) {
            best = type;
            best_count = count;
        }
    }
    return best;
}

int
KernelSpec::opCount(Opcode op) const
{
    int count = 0;
    for (const OpSpec &spec : ops) {
        if (spec.op == op)
            ++count;
    }
    return count;
}

} // namespace overgen::wl
