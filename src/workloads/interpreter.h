#ifndef OVERGEN_WORKLOADS_INTERPRETER_H
#define OVERGEN_WORKLOADS_INTERPRETER_H

/**
 * @file
 * Golden reference execution of a KernelSpec: a direct interpreter of the
 * loop nest with sequential semantics. The functional simulator must
 * reproduce these results exactly (both use evalScalarOp), which is how
 * end-to-end compilation + scheduling + simulation is verified.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "workloads/kernelspec.h"

namespace overgen::wl {

/**
 * Named array storage for one kernel run. Values are carried as doubles;
 * integer types operate on exactly-representable small integers (the
 * deterministic initializer guarantees magnitudes far below 2^53), and
 * bitwise ops round-trip through int64.
 */
class Memory
{
  public:
    /** Allocate and deterministically initialize all arrays. */
    void init(const KernelSpec &spec, uint64_t seed = 1);

    /** @return backing store of @p name; fatal when unknown. */
    std::vector<double> &array(const std::string &name);
    const std::vector<double> &array(const std::string &name) const;

    /** @return whether @p name exists. */
    bool has(const std::string &name) const;

    /** @return every array, name-ordered (snapshot serialization —
     * the simulator saves and restores functional memory contents
     * alongside its own clocked state). */
    const std::map<std::string, std::vector<double>> &
    all() const
    {
        return arrays;
    }

  private:
    std::map<std::string, std::vector<double>> arrays;
};

/**
 * Evaluate one scalar op with the overlay's arithmetic semantics.
 * Integer types truncate division and round results to integers.
 */
double evalScalarOp(Opcode op, DataType type, double a, double b);

/** Execute @p spec over @p mem with sequential semantics. */
void interpret(const KernelSpec &spec, Memory &mem);

/**
 * Resolve the flat element index of @p access at the given loop indices.
 * Handles indirect accesses by reading the index array from @p mem.
 * The result is clamped into the target array (mirrors the paper's
 * "no memory access will overflow" assumption, §IV-B).
 */
int64_t resolveIndex(const KernelSpec &spec, const AccessSpec &access,
                     const std::vector<int64_t> &ivs, const Memory &mem);

/** @return trip count of loop @p depth at the given outer indices. */
int64_t loopTrip(const KernelSpec &spec, size_t depth,
                 const std::vector<int64_t> &ivs);

/**
 * Evaluate the per-iteration op DAG once at loop indices @p ivs,
 * reading and writing @p mem with sequential semantics. The simulator's
 * compute fabric calls this per fabric firing lane, which is how
 * simulated results stay bit-identical to interpret().
 */
void evalIteration(const KernelSpec &spec,
                   const std::vector<int64_t> &ivs, Memory &mem);

} // namespace overgen::wl

#endif // OVERGEN_WORKLOADS_INTERPRETER_H
