#include "workloads/interpreter.h"

#include <cmath>

#include "common/logging.h"

namespace overgen::wl {

namespace {

/** FNV-1a hash for deterministic per-array initialization. */
uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 1469598103934665603ull;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

void
Memory::init(const KernelSpec &spec, uint64_t seed)
{
    arrays.clear();
    for (const ArraySpec &a : spec.arrays) {
        std::vector<double> data(static_cast<size_t>(a.elements));
        uint64_t h = fnv1a(a.name) ^ (seed * 0x9e3779b97f4a7c15ull);
        if (a.isIndex) {
            int64_t target = spec.arrayByName(a.indexTarget).elements;
            for (size_t i = 0; i < data.size(); ++i) {
                uint64_t v = (h + i * 2654435761ull);
                data[i] = static_cast<double>(
                    static_cast<int64_t>(v % static_cast<uint64_t>(target)));
            }
        } else if (dataTypeIsFloat(a.type)) {
            for (size_t i = 0; i < data.size(); ++i) {
                uint64_t v = (h + i * 2654435761ull) % 251;
                data[i] = static_cast<double>(v) / 16.0 + 0.5;
            }
        } else {
            // Small magnitudes keep integer products exact in double.
            for (size_t i = 0; i < data.size(); ++i) {
                uint64_t v = (h + i * 2654435761ull) % 17;
                data[i] = static_cast<double>(v);
            }
        }
        arrays.emplace(a.name, std::move(data));
    }
}

std::vector<double> &
Memory::array(const std::string &name)
{
    auto it = arrays.find(name);
    OG_ASSERT(it != arrays.end(), "unknown array '", name, "'");
    return it->second;
}

const std::vector<double> &
Memory::array(const std::string &name) const
{
    auto it = arrays.find(name);
    OG_ASSERT(it != arrays.end(), "unknown array '", name, "'");
    return it->second;
}

bool
Memory::has(const std::string &name) const
{
    return arrays.count(name) > 0;
}

double
evalScalarOp(Opcode op, DataType type, double a, double b)
{
    bool flt = dataTypeIsFloat(type);
    auto as_int = [](double v) { return static_cast<int64_t>(v); };
    double result = 0.0;
    switch (op) {
      case Opcode::Add:
      case Opcode::Acc:
        result = a + b;
        break;
      case Opcode::Sub:
        result = a - b;
        break;
      case Opcode::Mul:
        result = a * b;
        break;
      case Opcode::Div:
        if (b == 0.0)
            return 0.0;  // hardware divider saturates on div-by-zero
        result = flt ? a / b
                     : static_cast<double>(as_int(a) / as_int(b));
        break;
      case Opcode::Sqrt:
        result = std::sqrt(std::max(a, 0.0));
        break;
      case Opcode::Min:
        result = std::min(a, b);
        break;
      case Opcode::Max:
        result = std::max(a, b);
        break;
      case Opcode::Abs:
        result = std::abs(a);
        break;
      case Opcode::Shl:
        return static_cast<double>(as_int(a) << (as_int(b) & 63));
      case Opcode::Shr:
        return static_cast<double>(as_int(a) >> (as_int(b) & 63));
      case Opcode::And:
        return static_cast<double>(as_int(a) & as_int(b));
      case Opcode::Or:
        return static_cast<double>(as_int(a) | as_int(b));
      case Opcode::Xor:
        return static_cast<double>(as_int(a) ^ as_int(b));
      case Opcode::Select:
        return a != 0.0 ? b : 0.0;  // 2-operand form: pred ? value : 0
      case Opcode::CmpLt:
        return a < b ? 1.0 : 0.0;
      case Opcode::CmpEq:
        return a == b ? 1.0 : 0.0;
    }
    if (!flt)
        result = std::trunc(result);
    return result;
}

int64_t
loopTrip(const KernelSpec &spec, size_t depth,
         const std::vector<int64_t> &ivs)
{
    const LoopSpec &loop = spec.loops[depth];
    int64_t trip = loop.tripBase;
    for (size_t d = 0; d < loop.tripCoeff.size() && d < depth; ++d)
        trip += loop.tripCoeff[d] * ivs[d];
    return std::max<int64_t>(trip, 0);
}

int64_t
resolveIndex(const KernelSpec &spec, const AccessSpec &access,
             const std::vector<int64_t> &ivs, const Memory &mem)
{
    int64_t affine = access.offset;
    for (size_t d = 0; d < access.coeffs.size() && d < ivs.size(); ++d)
        affine += access.coeffs[d] * ivs[d];

    const ArraySpec &target = spec.arrayByName(access.array);
    int64_t index = affine;
    if (access.indirect()) {
        const ArraySpec &index_arr = spec.arrayByName(access.indexArray);
        int64_t pos = affine % index_arr.elements;
        if (pos < 0)
            pos += index_arr.elements;
        index = static_cast<int64_t>(
            mem.array(access.indexArray)[static_cast<size_t>(pos)]);
    }
    // Paper assumption: no access overflows; clamp defensively anyway.
    int64_t wrapped = index % target.elements;
    if (wrapped < 0)
        wrapped += target.elements;
    return wrapped;
}

void
evalIteration(const KernelSpec &spec, const std::vector<int64_t> &ivs,
              Memory &mem)
{
    std::vector<double> op_values(spec.ops.size(), 0.0);
    auto operand_value = [&](const Operand &operand) -> double {
        switch (operand.kind) {
          case Operand::Kind::Access: {
            const AccessSpec &acc = spec.accesses[operand.index];
            int64_t idx = resolveIndex(spec, acc, ivs, mem);
            return mem.array(acc.array)[static_cast<size_t>(idx)];
          }
          case Operand::Kind::Op:
            return op_values[operand.index];
          case Operand::Kind::Imm:
            return operand.imm;
          case Operand::Kind::Index:
            OG_ASSERT(operand.index >= 0 &&
                          operand.index <
                              static_cast<int>(ivs.size()),
                      "bad loop index operand");
            return static_cast<double>(ivs[operand.index]);
        }
        OG_PANIC("bad operand kind");
    };

    for (size_t i = 0; i < spec.ops.size(); ++i) {
        const OpSpec &op = spec.ops[i];
        double a = operand_value(op.lhs);
        double b = operand_value(op.rhs);
        op_values[i] = evalScalarOp(op.op, op.type, a, b);
        if (op.writeAccess >= 0) {
            const AccessSpec &acc = spec.accesses[op.writeAccess];
            OG_ASSERT(acc.isWrite, "writeAccess on a read access");
            int64_t idx = resolveIndex(spec, acc, ivs, mem);
            mem.array(acc.array)[static_cast<size_t>(idx)] = op_values[i];
        }
    }
}

namespace {

void
runLoop(const KernelSpec &spec, size_t depth, std::vector<int64_t> &ivs,
        Memory &mem)
{
    if (depth == spec.loops.size()) {
        evalIteration(spec, ivs, mem);
        return;
    }
    int64_t trip = loopTrip(spec, depth, ivs);
    for (int64_t i = 0; i < trip; ++i) {
        ivs[depth] = i;
        runLoop(spec, depth + 1, ivs, mem);
    }
    ivs[depth] = 0;
}

} // namespace

void
interpret(const KernelSpec &spec, Memory &mem)
{
    std::vector<int64_t> ivs(spec.loops.size(), 0);
    runLoop(spec, 0, ivs, mem);
}

} // namespace overgen::wl
