#ifndef OVERGEN_WORKLOADS_SUITES_H
#define OVERGEN_WORKLOADS_SUITES_H

/**
 * @file
 * The 19 evaluation workloads (paper Table II): 5 DSP kernels (REVEL),
 * 5 MachSuite kernels, and 9 Vitis Vision kernels, encoded as
 * KernelSpecs at the paper's data sizes. Each builder takes a scale
 * parameter so functional tests can run shrunken instances; the default
 * is the paper size.
 */

#include <vector>

#include "workloads/kernelspec.h"

namespace overgen::wl {

/** @name DSP suite (sizes per Table II) */
/// @{
KernelSpec makeFir(int n = 1024, int taps = 199);
KernelSpec makeMm(int n = 32);
KernelSpec makeCholesky(int n = 48);
KernelSpec makeSolver(int n = 48);
KernelSpec makeFft(int log2n = 12);
/// @}

/** @name MachSuite */
/// @{
KernelSpec makeStencil3d(int n = 32, int steps = 8);
KernelSpec makeCrs(int rows = 494, int nnz_per_row = 4);
KernelSpec makeGemm(int n = 64);
KernelSpec makeStencil2d(int n = 64, int steps = 32);
KernelSpec makeEllpack(int rows = 494, int nnz_per_row = 4);
/// @}

/** @name Vitis Vision (image edge @p n, 4 channels) */
/// @{
KernelSpec makeChannelExtract(int n = 128);
KernelSpec makeBgr2Grey(int n = 128);
KernelSpec makeBlur(int n = 128);
KernelSpec makeAccumulate(int n = 128);
KernelSpec makeAccSqr(int n = 128);
KernelSpec makeVecMax(int n = 128);
KernelSpec makeAccWeight(int n = 128);
KernelSpec makeConvertBit(int n = 128);
KernelSpec makeDerivative(int n = 130);
/// @}

/** @return the 5 DSP workloads at paper sizes. */
std::vector<KernelSpec> dspSuite();
/** @return the 5 MachSuite workloads at paper sizes. */
std::vector<KernelSpec> machSuite();
/** @return the 9 Vision workloads at paper sizes. */
std::vector<KernelSpec> visionSuite();
/** @return all 19 workloads, DSP then MachSuite then Vision. */
std::vector<KernelSpec> allWorkloads();
/** @return the named suite. */
std::vector<KernelSpec> suiteWorkloads(Suite suite);

/** @return workload by name at paper size; fatal when unknown. */
KernelSpec workloadByName(const std::string &name);

/**
 * @return workload by name at a shrunken test size (the golden-test
 * small-workload table: every kernel finishes in milliseconds); fatal
 * when unknown. The serve wire protocol's `smallSize` jobs resolve
 * through this, so multi-process tests stay fast.
 */
KernelSpec smallWorkloadByName(const std::string &name);

/**
 * @return the manually kernel-tuned HLS variant (paper Q2): variable
 * trip counts replaced by guarded max-trip loops, strided accesses
 * strength-reduced. Identity for workloads with no HLS tuning headroom.
 */
KernelSpec hlsTunedVariant(const KernelSpec &spec);

} // namespace overgen::wl

#endif // OVERGEN_WORKLOADS_SUITES_H
