#ifndef OVERGEN_COMMON_JSON_H
#define OVERGEN_COMMON_JSON_H

/**
 * @file
 * Minimal JSON value with parsing and pretty-printing. Used for ADG and
 * sysADG serialization (the overlay "design spec" that the compiler takes
 * as input) and for experiment result dumps.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace overgen {

/** A JSON value: null, bool, number (double), string, array, or object. */
class Json
{
  public:
    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    Json() : value(nullptr) {}
    Json(std::nullptr_t) : value(nullptr) {}
    Json(bool b) : value(b) {}
    Json(double d) : value(d) {}
    Json(int i) : value(static_cast<double>(i)) {}
    Json(int64_t i) : value(static_cast<double>(i)) {}
    Json(uint64_t i) : value(static_cast<double>(i)) {}
    Json(const char *s) : value(std::string(s)) {}
    Json(std::string s) : value(std::move(s)) {}
    Json(Array a) : value(std::move(a)) {}
    Json(Object o) : value(std::move(o)) {}

    /** Factory for an empty array. */
    static Json makeArray() { return Json(Array{}); }
    /** Factory for an empty object. */
    static Json makeObject() { return Json(Object{}); }

    bool isNull() const { return std::holds_alternative<std::nullptr_t>(value); }
    bool isBool() const { return std::holds_alternative<bool>(value); }
    bool isNumber() const { return std::holds_alternative<double>(value); }
    bool isString() const { return std::holds_alternative<std::string>(value); }
    bool isArray() const { return std::holds_alternative<Array>(value); }
    bool isObject() const { return std::holds_alternative<Object>(value); }

    /** @return bool payload; fatal if not a bool. */
    bool asBool() const;
    /** @return numeric payload; fatal if not a number. */
    double asNumber() const;
    /** @return numeric payload truncated to int64; fatal if not a number. */
    int64_t asInt() const;
    /** @return string payload; fatal if not a string. */
    const std::string &asString() const;
    /** @return array payload; fatal if not an array. */
    const Array &asArray() const;
    /** @return mutable array payload; fatal if not an array. */
    Array &asArray();
    /** @return object payload; fatal if not an object. */
    const Object &asObject() const;
    /** @return mutable object payload; fatal if not an object. */
    Object &asObject();

    /** Object member access; fatal if missing or not an object. */
    const Json &at(const std::string &key) const;
    /** @return whether this is an object containing @p key. */
    bool contains(const std::string &key) const;
    /** Object member access with a default when the key is missing. */
    double numberOr(const std::string &key, double fallback) const;

    /** Insert/overwrite an object member. */
    void set(const std::string &key, Json v);
    /** Append to an array. */
    void push(Json v);

    /** Serialize; @p indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /** Parse @p text; fatal on malformed input. */
    static Json parse(const std::string &text);

    /**
     * Parse @p text, returning nullopt instead of dying on malformed
     * input. When @p error is non-null it receives a description of
     * the first syntax violation. The overlay library uses this to
     * skip corrupted entries with a diagnostic rather than aborting.
     */
    static std::optional<Json> tryParse(const std::string &text,
                                        std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
        value;
};

} // namespace overgen

#endif // OVERGEN_COMMON_JSON_H
