#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace overgen {

bool
Json::asBool() const
{
    OG_ASSERT(isBool(), "JSON value is not a bool");
    return std::get<bool>(value);
}

double
Json::asNumber() const
{
    OG_ASSERT(isNumber(), "JSON value is not a number");
    return std::get<double>(value);
}

int64_t
Json::asInt() const
{
    return static_cast<int64_t>(asNumber());
}

const std::string &
Json::asString() const
{
    OG_ASSERT(isString(), "JSON value is not a string");
    return std::get<std::string>(value);
}

const Json::Array &
Json::asArray() const
{
    OG_ASSERT(isArray(), "JSON value is not an array");
    return std::get<Array>(value);
}

Json::Array &
Json::asArray()
{
    OG_ASSERT(isArray(), "JSON value is not an array");
    return std::get<Array>(value);
}

const Json::Object &
Json::asObject() const
{
    OG_ASSERT(isObject(), "JSON value is not an object");
    return std::get<Object>(value);
}

Json::Object &
Json::asObject()
{
    OG_ASSERT(isObject(), "JSON value is not an object");
    return std::get<Object>(value);
}

const Json &
Json::at(const std::string &key) const
{
    const auto &obj = asObject();
    auto it = obj.find(key);
    OG_ASSERT(it != obj.end(), "missing JSON key '", key, "'");
    return it->second;
}

bool
Json::contains(const std::string &key) const
{
    if (!isObject())
        return false;
    return asObject().count(key) > 0;
}

double
Json::numberOr(const std::string &key, double fallback) const
{
    if (!contains(key))
        return fallback;
    return at(key).asNumber();
}

void
Json::set(const std::string &key, Json v)
{
    if (isNull())
        value = Object{};
    asObject()[key] = std::move(v);
}

void
Json::push(Json v)
{
    if (isNull())
        value = Array{};
    asArray().push_back(std::move(v));
}

namespace {

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            // RFC 8259: all other control characters must be escaped.
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
formatNumber(std::string &out, double d)
{
    if (d == std::floor(d) && std::abs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        out += buf;
    } else {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        out += buf;
    }
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<size_t>(indent) * depth, ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    if (isNull()) {
        out += "null";
    } else if (isBool()) {
        out += asBool() ? "true" : "false";
    } else if (isNumber()) {
        formatNumber(out, asNumber());
    } else if (isString()) {
        escapeString(out, asString());
    } else if (isArray()) {
        const auto &arr = asArray();
        if (arr.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        bool first = true;
        for (const auto &elem : arr) {
            if (!first)
                out += ',';
            first = false;
            newlineIndent(out, indent, depth + 1);
            elem.dumpTo(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += ']';
    } else {
        const auto &obj = asObject();
        if (obj.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        bool first = true;
        for (const auto &[key, val] : obj) {
            if (!first)
                out += ',';
            first = false;
            newlineIndent(out, indent, depth + 1);
            escapeString(out, key);
            out += indent > 0 ? ": " : ":";
            val.dumpTo(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += '}';
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Syntax error thrown by the parser; tryParse() catches it. */
struct ParseError
{
    std::string message;
};

/** Recursive-descent JSON parser over a string. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text(text) {}

    Json
    parse()
    {
        Json result = parseValue();
        skipWhitespace();
        if (pos != text.size())
            fail("trailing characters in JSON at ", pos);
        return result;
    }

  private:
    template <typename... Args>
    [[noreturn]] void
    fail(Args &&...args)
    {
        throw ParseError{ detail::concat(
            std::forward<Args>(args)...) };
    }

    void
    skipWhitespace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of JSON");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c) {
            fail("expected '", c, "' at position ", pos, ", got '",
                 text[pos], "'");
        }
        ++pos;
    }

    bool
    consumeLiteral(const char *lit)
    {
        size_t len = std::string(lit).size();
        if (text.compare(pos, len, lit) == 0) {
            pos += len;
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        skipWhitespace();
        char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return Json(parseString());
        if (consumeLiteral("true"))
            return Json(true);
        if (consumeLiteral("false"))
            return Json(false);
        if (consumeLiteral("null"))
            return Json(nullptr);
        return parseNumber();
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated JSON string");
            char c = text[pos++];
            if (c == '"')
                break;
            if (c == '\\') {
                if (pos >= text.size())
                    fail("bad escape");
                char esc = text[pos++];
                switch (esc) {
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        fail("bad \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= h - '0';
                        else if (h >= 'a' && h <= 'f')
                            code |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            code |= h - 'A' + 10;
                        else
                            fail("bad \\u escape digit");
                    }
                    // UTF-8 encode the code point (BMP only; this
                    // writer never emits surrogate pairs).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out +=
                            static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3F));
                        out +=
                            static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    out += esc;
                }
            } else {
                out += c;
            }
        }
        return out;
    }

    Json
    parseNumber()
    {
        size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
                text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
        }
        if (pos == start)
            fail("invalid JSON number at ", start);
        try {
            return Json(std::stod(text.substr(start, pos - start)));
        } catch (const std::exception &) {
            fail("invalid JSON number at ", start);
        }
    }

    Json
    parseArray()
    {
        expect('[');
        Json arr = Json::makeArray();
        skipWhitespace();
        if (peek() == ']') {
            ++pos;
            return arr;
        }
        while (true) {
            arr.push(parseValue());
            skipWhitespace();
            if (peek() == ',') {
                ++pos;
            } else {
                expect(']');
                break;
            }
        }
        return arr;
    }

    Json
    parseObject()
    {
        expect('{');
        Json obj = Json::makeObject();
        skipWhitespace();
        if (peek() == '}') {
            ++pos;
            return obj;
        }
        while (true) {
            skipWhitespace();
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            obj.set(key, parseValue());
            skipWhitespace();
            if (peek() == ',') {
                ++pos;
            } else {
                expect('}');
                break;
            }
        }
        return obj;
    }

    const std::string &text;
    size_t pos = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    std::string error;
    std::optional<Json> result = tryParse(text, &error);
    if (!result)
        OG_FATAL("JSON parse error: ", error);
    return std::move(*result);
}

std::optional<Json>
Json::tryParse(const std::string &text, std::string *error)
{
    Parser parser(text);
    try {
        return parser.parse();
    } catch (const ParseError &e) {
        if (error != nullptr)
            *error = e.message;
        return std::nullopt;
    }
}

} // namespace overgen
