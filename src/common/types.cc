#include "common/types.h"

#include "common/logging.h"

namespace overgen {

int
dataTypeBytes(DataType type)
{
    switch (type) {
      case DataType::I8:
        return 1;
      case DataType::I16:
        return 2;
      case DataType::I32:
      case DataType::F32:
        return 4;
      case DataType::I64:
      case DataType::F64:
        return 8;
    }
    OG_PANIC("unknown data type");
}

bool
dataTypeIsFloat(DataType type)
{
    return type == DataType::F32 || type == DataType::F64;
}

std::string
dataTypeName(DataType type)
{
    switch (type) {
      case DataType::I8:
        return "i8";
      case DataType::I16:
        return "i16";
      case DataType::I32:
        return "i32";
      case DataType::I64:
        return "i64";
      case DataType::F32:
        return "f32";
      case DataType::F64:
        return "f64";
    }
    OG_PANIC("unknown data type");
}

DataType
dataTypeFromName(const std::string &name)
{
    if (name == "i8")
        return DataType::I8;
    if (name == "i16")
        return DataType::I16;
    if (name == "i32")
        return DataType::I32;
    if (name == "i64")
        return DataType::I64;
    if (name == "f32")
        return DataType::F32;
    if (name == "f64")
        return DataType::F64;
    OG_FATAL("unknown data type name '", name, "'");
}

int
subwordLanes(int pe_bytes, DataType type)
{
    int elem = dataTypeBytes(type);
    if (pe_bytes < elem)
        return 0;
    return pe_bytes / elem;
}

} // namespace overgen
