#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "common/logging.h"

namespace overgen {

namespace {

/**
 * The pool (if any) whose region this thread is currently executing
 * tasks for; used to catch the nested-use deadlock at the call site.
 */
thread_local const ThreadPool *tlsActivePool = nullptr;

/**
 * One parallel region. Indices are claimed from `cursor` in ascending
 * order and executed exactly once. `fn` and `errors` live on the
 * caller's stack: a worker that joins after the caller already left
 * the region sees an exhausted cursor and never dereferences them
 * (the shared_ptr only keeps this struct alive, not the caller's
 * frame).
 */
struct Job
{
    const std::function<void(size_t)> *fn = nullptr;
    size_t size = 0;
    std::atomic<size_t> cursor{ 0 };
    std::vector<std::exception_ptr> *errors = nullptr;
    std::mutex errorMutex;
};

void
drainJob(Job &job)
{
    while (true) {
        size_t i = job.cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.size)
            return;
        try {
            (*job.fn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(job.errorMutex);
            (*job.errors)[i] = std::current_exception();
        }
    }
}

} // namespace

/** Worker threads parked between jobs; one job is live at a time. */
struct ThreadPool::Impl
{
    std::mutex stateMutex;
    std::condition_variable wake;
    std::condition_variable done;
    uint64_t generation = 0;  //!< bumped per job to wake workers
    bool shuttingDown = false;
    int busyWorkers = 0;
    std::shared_ptr<Job> current;

    std::mutex jobMutex;  //!< serializes concurrent parallelFor calls
    std::vector<std::thread> workers;

    void
    workerLoop(const ThreadPool *pool)
    {
        uint64_t seen = 0;
        while (true) {
            std::shared_ptr<Job> job;
            {
                std::unique_lock<std::mutex> lock(stateMutex);
                wake.wait(lock, [&] {
                    return shuttingDown || generation != seen;
                });
                if (shuttingDown)
                    return;
                seen = generation;
                job = current;
                ++busyWorkers;
            }
            tlsActivePool = pool;
            drainJob(*job);
            tlsActivePool = nullptr;
            {
                std::lock_guard<std::mutex> lock(stateMutex);
                if (--busyWorkers == 0)
                    done.notify_all();
            }
        }
    }
};

ThreadPool::ThreadPool(int threads)
{
    numThreads = threads == 0 ? hardwareThreads() : threads;
    OG_ASSERT(numThreads >= 1, "bad thread count ", threads);
    if (numThreads == 1)
        return;  // inline serial execution, no workers
    impl = new Impl;
    impl->workers.reserve(numThreads - 1);
    for (int t = 0; t < numThreads - 1; ++t)
        impl->workers.emplace_back(
            [this] { impl->workerLoop(this); });
}

ThreadPool::~ThreadPool()
{
    if (impl == nullptr)
        return;
    {
        std::lock_guard<std::mutex> lock(impl->stateMutex);
        impl->shuttingDown = true;
    }
    impl->wake.notify_all();
    for (std::thread &worker : impl->workers)
        worker.join();
    delete impl;
}

int
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &fn)
{
    OG_ASSERT(tlsActivePool != this,
              "nested parallelFor on the same ThreadPool (would "
              "deadlock); use a separate pool for inner parallelism");
    if (n == 0)
        return;
    runRegion(n, fn);
}

void
ThreadPool::runRegion(size_t n, const std::function<void(size_t)> &fn)
{
    std::vector<std::exception_ptr> errors(n);
    if (impl == nullptr || n == 1) {
        // Serial path: indices in ascending order on this thread,
        // stopping at the first failing task (its exception is the
        // lowest-index one by construction).
        const ThreadPool *saved = tlsActivePool;
        tlsActivePool = this;
        for (size_t i = 0; i < n; ++i) {
            try {
                fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
                break;
            }
        }
        tlsActivePool = saved;
    } else {
        std::lock_guard<std::mutex> jobLock(impl->jobMutex);
        auto job = std::make_shared<Job>();
        job->fn = &fn;
        job->size = n;
        job->errors = &errors;
        {
            std::lock_guard<std::mutex> lock(impl->stateMutex);
            impl->current = job;
            ++impl->generation;
        }
        impl->wake.notify_all();
        const ThreadPool *saved = tlsActivePool;
        tlsActivePool = this;
        drainJob(*job);  // the caller works too
        tlsActivePool = saved;
        // Workers that joined this region incremented busyWorkers
        // under stateMutex before claiming any index; once the count
        // drops to zero no task of this region is still running, and
        // a worker waking later only ever sees an exhausted cursor.
        std::unique_lock<std::mutex> lock(impl->stateMutex);
        impl->done.wait(lock,
                        [&] { return impl->busyWorkers == 0; });
    }
    for (std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

} // namespace overgen
