#ifndef OVERGEN_COMMON_OPCODE_H
#define OVERGEN_COMMON_OPCODE_H

/**
 * @file
 * Functional-unit opcodes supported by OverGen processing elements, with
 * static properties (latency, integer/float class) used by the scheduler,
 * the performance model, and the FPGA resource model.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace overgen {

/** Opcodes a processing element FU may implement. */
enum class Opcode : uint8_t {
    Add,
    Sub,
    Mul,
    Div,
    Sqrt,
    Min,
    Max,
    Abs,
    Shl,
    Shr,
    And,
    Or,
    Xor,
    Select,  //!< predicated select (control lookup table)
    CmpLt,
    CmpEq,
    Acc,     //!< accumulate (reduction); may fall back to recurrence stream
};

/** Static properties of an (opcode, datatype) functional unit. */
struct OpProperties
{
    /** Pipeline latency in cycles on the overlay fabric. */
    int latency;
    /** Whether the FU occupies an FPGA DSP slice when floating point. */
    bool usesDsp;
    /** Whether the unit is fully pipelined (II = 1). */
    bool pipelined;
};

/** @return the number of defined opcodes. */
constexpr int
numOpcodes()
{
    return static_cast<int>(Opcode::Acc) + 1;
}

/** @return a short printable opcode name. */
std::string opcodeName(Opcode op);

/** Parse a name produced by opcodeName(); fatal on unknown names. */
Opcode opcodeFromName(const std::string &name);

/** @return static properties of @p op executed on type @p type. */
OpProperties opProperties(Opcode op, DataType type);

/** @return all opcodes, for capability enumeration in the DSE. */
const std::vector<Opcode> &allOpcodes();

/**
 * A functional-unit capability: one opcode at one data type. PE
 * capability sets are sets of these.
 */
struct FuCapability
{
    Opcode op;
    DataType type;

    bool operator==(const FuCapability &other) const = default;
    auto operator<=>(const FuCapability &other) const = default;
};

/** @return printable form, e.g. "mul.f64". */
std::string fuCapabilityName(const FuCapability &cap);

} // namespace overgen

#endif // OVERGEN_COMMON_OPCODE_H
