#ifndef OVERGEN_COMMON_STATS_H
#define OVERGEN_COMMON_STATS_H

/**
 * @file
 * Small statistics helpers shared by the models, the DSE objective, and
 * the benchmark harnesses (the paper reports geometric means throughout).
 */

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "common/logging.h"

namespace overgen {

/** @return the geometric mean of @p values; all must be positive. */
inline double
geometricMean(std::span<const double> values)
{
    OG_ASSERT(!values.empty(), "geometric mean of empty set");
    double log_sum = 0.0;
    for (double v : values) {
        OG_ASSERT(v > 0.0, "geometric mean of non-positive value ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/**
 * @return the weighted geometric mean of @p values with @p weights
 * (paper §V-C: overall performance is the weighted geomean of per-mDFG
 * IPC estimates).
 */
inline double
weightedGeometricMean(std::span<const double> values,
                      std::span<const double> weights)
{
    OG_ASSERT(values.size() == weights.size(), "size mismatch");
    OG_ASSERT(!values.empty(), "geometric mean of empty set");
    double log_sum = 0.0;
    double weight_sum = 0.0;
    for (size_t i = 0; i < values.size(); ++i) {
        OG_ASSERT(values[i] > 0.0, "non-positive value");
        log_sum += weights[i] * std::log(values[i]);
        weight_sum += weights[i];
    }
    OG_ASSERT(weight_sum > 0.0, "zero total weight");
    return std::exp(log_sum / weight_sum);
}

/**
 * @return the @p p-th percentile of @p values (p in [0, 100]),
 * nearest-rank on a sorted copy: index round(p/100 * (n-1)). Shared
 * by the serving benches' latency reporting and the phase benches'
 * busy-fraction spread statistics.
 */
inline double
percentile(std::span<const double> values, double p)
{
    OG_ASSERT(!values.empty(), "percentile of empty set");
    OG_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    size_t index = static_cast<size_t>(
        p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(index, sorted.size() - 1)];
}

/** @return the arithmetic mean of @p values. */
inline double
arithmeticMean(std::span<const double> values)
{
    OG_ASSERT(!values.empty(), "mean of empty set");
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace overgen

#endif // OVERGEN_COMMON_STATS_H
