#include "common/opcode.h"

#include "common/logging.h"

namespace overgen {

namespace {

struct OpName
{
    Opcode op;
    const char *name;
};

const OpName opNames[] = {
    { Opcode::Add, "add" },     { Opcode::Sub, "sub" },
    { Opcode::Mul, "mul" },     { Opcode::Div, "div" },
    { Opcode::Sqrt, "sqrt" },   { Opcode::Min, "min" },
    { Opcode::Max, "max" },     { Opcode::Abs, "abs" },
    { Opcode::Shl, "shl" },     { Opcode::Shr, "shr" },
    { Opcode::And, "and" },     { Opcode::Or, "or" },
    { Opcode::Xor, "xor" },     { Opcode::Select, "select" },
    { Opcode::CmpLt, "cmplt" }, { Opcode::CmpEq, "cmpeq" },
    { Opcode::Acc, "acc" },
};

} // namespace

std::string
opcodeName(Opcode op)
{
    for (const auto &entry : opNames) {
        if (entry.op == op)
            return entry.name;
    }
    OG_PANIC("unknown opcode ", static_cast<int>(op));
}

Opcode
opcodeFromName(const std::string &name)
{
    for (const auto &entry : opNames) {
        if (name == entry.name)
            return entry.op;
    }
    OG_FATAL("unknown opcode name '", name, "'");
}

OpProperties
opProperties(Opcode op, DataType type)
{
    bool flt = dataTypeIsFloat(type);
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Acc:
        return { flt ? 4 : 1, flt, true };
      case Opcode::Mul:
        return { flt ? 5 : 3, true, true };
      case Opcode::Div:
        // Divider is iterative on the FPGA fabric: not fully pipelined.
        return { flt ? 18 : 12, flt, false };
      case Opcode::Sqrt:
        return { flt ? 16 : 12, flt, false };
      case Opcode::Min:
      case Opcode::Max:
      case Opcode::Abs:
      case Opcode::CmpLt:
      case Opcode::CmpEq:
        return { flt ? 3 : 1, false, true };
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Select:
        return { 1, false, true };
    }
    OG_PANIC("unknown opcode ", static_cast<int>(op));
}

const std::vector<Opcode> &
allOpcodes()
{
    static const std::vector<Opcode> ops = [] {
        std::vector<Opcode> v;
        for (const auto &entry : opNames)
            v.push_back(entry.op);
        return v;
    }();
    return ops;
}

std::string
fuCapabilityName(const FuCapability &cap)
{
    return opcodeName(cap.op) + "." + dataTypeName(cap.type);
}

} // namespace overgen
