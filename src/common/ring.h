#ifndef OVERGEN_COMMON_RING_H
#define OVERGEN_COMMON_RING_H

/**
 * @file
 * A minimal contiguous ring buffer. std::deque allocates fixed-size
 * blocks through an indirection map; the simulator's per-cycle hot
 * loops (port FIFO arrivals, fill-expiry queues) want their handful
 * of live entries in one cache line, so this trades deque's stable
 * references — which none of those callers need — for a single
 * power-of-two array with head/count indices.
 */

#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace overgen::common {

/** FIFO ring over a contiguous power-of-two array. Grows by
 * relinearizing into a doubled array; indices are FIFO positions
 * (0 == front). erase() keeps FIFO order. */
template <typename T>
class RingBuffer
{
  public:
    size_t size() const { return count; }
    bool empty() const { return count == 0; }

    T &
    operator[](size_t i)
    {
        OG_ASSERT(i < count, "ring index ", i, " out of range ",
                  count);
        return buf[(head + i) & mask];
    }

    const T &
    operator[](size_t i) const
    {
        OG_ASSERT(i < count, "ring index ", i, " out of range ",
                  count);
        return buf[(head + i) & mask];
    }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[count - 1]; }
    const T &back() const { return (*this)[count - 1]; }

    void
    push_back(const T &value)
    {
        if (count == buf.size())
            grow();
        buf[(head + count) & mask] = value;
        ++count;
    }

    void
    pop_front()
    {
        OG_ASSERT(count > 0, "pop_front on an empty ring");
        head = (head + 1) & mask;
        --count;
    }

    void
    pop_back()
    {
        OG_ASSERT(count > 0, "pop_back on an empty ring");
        --count;
    }

    /** Remove the entry at FIFO position @p i, preserving order. */
    void
    erase(size_t i)
    {
        OG_ASSERT(i < count, "ring erase ", i, " out of range ",
                  count);
        for (size_t j = i; j + 1 < count; ++j)
            (*this)[j] = (*this)[j + 1];
        --count;
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

  private:
    void
    grow()
    {
        size_t new_cap = buf.empty() ? 8 : buf.size() * 2;
        std::vector<T> next(new_cap);
        for (size_t i = 0; i < count; ++i)
            next[i] = (*this)[i];
        buf = std::move(next);
        head = 0;
        mask = new_cap - 1;
    }

    std::vector<T> buf;
    size_t head = 0;
    size_t count = 0;
    size_t mask = 0;
};

} // namespace overgen::common

#endif // OVERGEN_COMMON_RING_H
