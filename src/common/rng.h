#ifndef OVERGEN_COMMON_RNG_H
#define OVERGEN_COMMON_RNG_H

/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**) used by the
 * DSE, the spatial scheduler, and synthetic data generation. All
 * randomized components take an explicit Rng so experiments are exactly
 * reproducible from a seed.
 */

#include <cmath>
#include <cstdint>

#include "common/logging.h"

namespace overgen {

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        uint64_t x = seed;
        for (auto &word : state)
            word = splitmix64(x);
    }

    /** @return the next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t result = rotl(state[1] * 5, 7) * 9;
        uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /**
     * @return a uniform integer in [0, bound). @p bound must be > 0.
     * Lemire's multiply-shift with rejection of the biased low
     * slice, so every value is exactly equiprobable (a plain modulo
     * overweights small values whenever 2^64 % bound != 0).
     */
    uint64_t
    nextBelow(uint64_t bound)
    {
        OG_ASSERT(bound > 0, "nextBelow(0)");
        using u128 = unsigned __int128;
        u128 m = static_cast<u128>(next()) * bound;
        auto low = static_cast<uint64_t>(m);
        if (low < bound) {
            uint64_t threshold = -bound % bound;  // 2^64 mod bound
            while (low < threshold) {
                m = static_cast<u128>(next()) * bound;
                low = static_cast<uint64_t>(m);
            }
        }
        return static_cast<uint64_t>(m >> 64);
    }

    /** @return a uniform integer in [lo, hi] inclusive. */
    int64_t
    nextRange(int64_t lo, int64_t hi)
    {
        OG_ASSERT(lo <= hi, "bad range [", lo, ", ", hi, "]");
        return lo + static_cast<int64_t>(
            nextBelow(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** @return a uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1p-53;
    }

    /** @return true with probability @p p. */
    bool
    nextBool(double p = 0.5)
    {
        return nextDouble() < p;
    }

    /** @return a standard normal sample (Box-Muller, one value). */
    double
    nextGaussian()
    {
        double u1 = nextDouble();
        double u2 = nextDouble();
        if (u1 < 1e-300)
            u1 = 1e-300;
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static uint64_t
    splitmix64(uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ull;
        uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    uint64_t state[4];
};

} // namespace overgen

#endif // OVERGEN_COMMON_RNG_H
