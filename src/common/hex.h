#ifndef OVERGEN_COMMON_HEX_H
#define OVERGEN_COMMON_HEX_H

/**
 * @file
 * Lossless text codec for 64-bit values. The JSON layer stores every
 * number as a double, which silently rounds integers above 2^53 —
 * fingerprints and RNG seeds do not survive that round-trip, so the
 * overlay library and the serve wire protocol carry them as fixed-
 * width hex strings instead.
 */

#include <cstdint>
#include <string>

#include "common/logging.h"

namespace overgen {

/** @return @p value as a 16-digit lowercase hex string ("0x" free,
 * zero padded — a fixed-width, byte-stable encoding). */
inline std::string
hexU64(uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

/** Decode a hexU64() string. @return whether @p text was a valid
 * 1..16 digit hex value (result in @p out). */
inline bool
tryParseHexU64(const std::string &text, uint64_t &out)
{
    if (text.empty() || text.size() > 16)
        return false;
    uint64_t value = 0;
    for (char c : text) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return false;
        value = (value << 4) | static_cast<uint64_t>(digit);
    }
    out = value;
    return true;
}

/** Decode a hexU64() string; fatal on malformed input. */
inline uint64_t
parseHexU64(const std::string &text)
{
    uint64_t value = 0;
    OG_ASSERT(tryParseHexU64(text, value), "bad hex64 value '", text,
              "'");
    return value;
}

} // namespace overgen

#endif // OVERGEN_COMMON_HEX_H
