#ifndef OVERGEN_COMMON_PARALLEL_H
#define OVERGEN_COMMON_PARALLEL_H

/**
 * @file
 * A fixed-size work pool with deterministic result ordering, used by
 * the DSE's batched speculative candidate evaluation and the bench
 * harnesses' per-suite/per-kernel fan-out.
 *
 * Determinism contract (see DESIGN.md "Determinism under
 * parallelism"): `parallelFor(n, fn)` runs `fn(0) .. fn(n-1)` with
 * each index executed exactly once, and `parallelMap` stores every
 * result at its own index — so the *value* of a parallel region never
 * depends on the thread count or on scheduling order, only the
 * wall-clock does. Tasks must not communicate with each other; any
 * shared state they touch must be externally synchronized.
 *
 * Exception contract: if tasks throw, the exception of the
 * lowest-index throwing task is rethrown in the caller once the
 * region completes (indices are claimed in ascending order, so the
 * lowest throwing index always executes before the region is torn
 * down). Whether tasks after a throwing one still run is unspecified.
 *
 * A pool constructed with one thread runs every region inline on the
 * calling thread — the legacy serial path, with no worker threads at
 * all. Nested use of the *same* pool from inside one of its own tasks
 * would deadlock and is a fatal assertion; distinct pools may nest.
 */

#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

namespace overgen {

/** See file comment. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 selects hardwareThreads(). A
     * count of 1 never spawns threads (inline serial execution).
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return the resolved thread count (>= 1). */
    int threadCount() const { return numThreads; }

    /**
     * Run fn(i) for every i in [0, n), blocking until all complete.
     * The calling thread participates in the work. Rethrows the
     * lowest-index task exception, if any.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Map [0, n) through @p fn, returning results in index order
     * regardless of completion order.
     */
    template <typename Fn>
    auto
    parallelMap(size_t n, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, size_t>>
    {
        using T = std::invoke_result_t<Fn &, size_t>;
        std::vector<std::optional<T>> slots(n);
        parallelFor(n, [&](size_t i) { slots[i].emplace(fn(i)); });
        std::vector<T> results;
        results.reserve(n);
        for (auto &slot : slots)
            results.push_back(std::move(*slot));
        return results;
    }

    /** @return the machine's hardware concurrency (>= 1). */
    static int hardwareThreads();

  private:
    struct Impl;  //!< worker threads + job state (none when serial)
    void runRegion(size_t n, const std::function<void(size_t)> &fn);

    int numThreads = 1;
    Impl *impl = nullptr;
};

} // namespace overgen

#endif // OVERGEN_COMMON_PARALLEL_H
