#ifndef OVERGEN_COMMON_TYPES_H
#define OVERGEN_COMMON_TYPES_H

/**
 * @file
 * Scalar data types supported by OverGen functional units and streams
 * (paper §III-B: 8..64-bit integer, single/double float).
 */

#include <cstdint>
#include <string>

namespace overgen {

/** Element data types a PE / stream can carry. */
enum class DataType : uint8_t {
    I8,
    I16,
    I32,
    I64,
    F32,
    F64,
};

/** @return the width of @p type in bytes. */
int dataTypeBytes(DataType type);

/** @return whether @p type is a floating-point type. */
bool dataTypeIsFloat(DataType type);

/** @return a short printable name, e.g. "i16" or "f64". */
std::string dataTypeName(DataType type);

/** Parse a name produced by dataTypeName(); fatal on unknown names. */
DataType dataTypeFromName(const std::string &name);

/**
 * Number of subword SIMD lanes a PE of @p pe_bytes datapath width
 * provides for elements of @p type (paper §III-B: PEs wider than the FU
 * get subword SIMD).
 */
int subwordLanes(int pe_bytes, DataType type);

} // namespace overgen

#endif // OVERGEN_COMMON_TYPES_H
