#ifndef OVERGEN_COMMON_LOGGING_H
#define OVERGEN_COMMON_LOGGING_H

/**
 * @file
 * Status-message and error helpers in the gem5 tradition: panic() for
 * internal invariant violations, fatal() for user errors, warn()/inform()
 * for non-fatal diagnostics.
 */

#include <sstream>
#include <string>

namespace overgen {

namespace detail {

/** Concatenate a variadic argument pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Abort the process after printing a panic message. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit the process after printing a fatal (user-error) message. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** Enable or disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled. */
bool verbose();

} // namespace detail

} // namespace overgen

/** Internal invariant violated: print and abort. */
#define OG_PANIC(...) \
    ::overgen::detail::panicImpl(__FILE__, __LINE__, \
                                 ::overgen::detail::concat(__VA_ARGS__))

/** Unrecoverable user/configuration error: print and exit(1). */
#define OG_FATAL(...) \
    ::overgen::detail::fatalImpl(__FILE__, __LINE__, \
                                 ::overgen::detail::concat(__VA_ARGS__))

/** Non-fatal warning. */
#define OG_WARN(...) \
    ::overgen::detail::warnImpl(::overgen::detail::concat(__VA_ARGS__))

/** Informational status message (suppressed when verbosity is off). */
#define OG_INFORM(...) \
    do { \
        if (::overgen::detail::verbose()) { \
            ::overgen::detail::informImpl( \
                ::overgen::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

/** Assert an invariant with a formatted message. */
#define OG_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            OG_PANIC("assertion '", #cond, "' failed: ", \
                     ::overgen::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

#endif // OVERGEN_COMMON_LOGGING_H
