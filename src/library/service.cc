#include "library/service.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/logging.h"
#include "dse/explorer.h"
#include "model/resource_model.h"
#include "workloads/suites.h"

namespace overgen::library {

namespace {

uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

wl::KernelSpec
resolveSpec(const std::string &workload, bool smallSize)
{
    return smallSize ? wl::smallWorkloadByName(workload)
                     : wl::workloadByName(workload);
}

} // namespace

uint64_t
LibraryService::warmSeedFor(const std::string &workload, uint64_t salt)
{
    uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
    for (char c : workload) {
        h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
        h *= 1099511628211ull;
    }
    // DseOptions::seed feeds splitmix expansion, so 0 is legal, but
    // avoid it anyway: a zero seed reads as "unset" in entry JSON.
    uint64_t seed = mix64(h ^ salt);
    return seed == 0 ? 1 : seed;
}

LibraryEntry
warmOverlay(const std::string &workload, bool smallSize,
            bool applyTuning, uint64_t seed, int iterations,
            const MatchOptions &options)
{
    wl::KernelSpec spec = resolveSpec(workload, smallSize);
    dse::DseOptions dopts;
    dopts.seed = seed;
    dopts.iterations = std::max(iterations, 1);
    // The warm itself runs single-threaded: the serve worker pool is
    // the parallelism, and the trajectory is thread-count-invariant
    // anyway — this only pins wall-clock behavior inside workers.
    dopts.threads = 1;
    dopts.applyTuning = applyTuning;
    dopts.heartbeatEvery = 0;
    dopts.perf = options.perf;
    dse::DseResult result = dse::exploreOverlay({ spec }, dopts);

    LibraryEntry entry;
    entry.design = canonicalDesign(result.design);
    std::tie(entry.fpA, entry.fpB) = fingerprintDesign(entry.design);
    entry.resources = result.resources;
    entry.utilization = result.utilization;
    entry.origin = "warm:" + spec.name;
    entry.warmSeed = seed;
    entry.warmIterations = dopts.iterations;
    // Score the kernel on its own overlay with the matcher's scoring,
    // so the re-match after warming reads this memoized record and
    // every path (in-process, server, retry) agrees byte-for-byte.
    MatchOptions scoring = options;
    scoring.applyTuning = applyTuning;
    scoring.threads = 1;
    entry.upsertRecord(scoreKernelOnDesign(spec, entry.design, scoring));
    return entry;
}

serve::JobHandler
makeLibraryHandler(MatchOptions options)
{
    options.threads = 1;  // workers stay single-threaded
    return [options](const serve::JobSpec &job,
                     const std::vector<
                         std::shared_ptr<const adg::SysAdg>> &designs)
               -> serve::ResultRow {
        serve::ResultRow row;
        MatchOptions mopts = options;
        mopts.applyTuning = job.applyTuning;
        if (job.kind == serve::JobKind::Match) {
            wl::KernelSpec spec =
                resolveSpec(job.workload, job.smallSize);
            for (int id : job.matchDesigns) {
                OG_ASSERT(id >= 0 &&
                              id < static_cast<int>(designs.size()),
                          "match job references unknown design ", id);
                KernelRecord record =
                    scoreKernelOnDesign(spec, *designs[id], mopts);
                serve::WireScore score;
                score.design = id;
                score.feasible = record.feasible;
                score.score = record.score;
                score.ipc = record.ipc;
                score.variant = record.variant;
                score.bottleneck = record.bottleneck;
                row.scores.push_back(std::move(score));
            }
            row.ok = true;
            return row;
        }
        if (job.kind == serve::JobKind::Warm) {
            LibraryEntry entry =
                warmOverlay(job.workload, job.smallSize,
                            job.applyTuning, job.warmSeed,
                            job.warmIterations, mopts);
            if (const KernelRecord *record = entry.findRecord(
                    resolveSpec(job.workload, job.smallSize).name)) {
                row.ipc = record->ipc;
                row.variant = record->variant;
            }
            row.payload = entry.toJson();
            row.ok = true;
            return row;
        }
        row.diagnostic = "library handler: unsupported job kind";
        return row;
    };
}

LibraryService::LibraryService(ServiceOptions opts, OverlayLibrary l)
    : lib(std::move(l)), options(std::move(opts))
{
}

wl::KernelSpec
LibraryService::specFor(const std::string &workload) const
{
    return resolveSpec(workload, options.smallSize);
}

serve::CoordinatorOptions
LibraryService::serveOptions() const
{
    serve::CoordinatorOptions copts = options.serve;
    copts.handler = makeLibraryHandler(options.match);
    return copts;
}

void
LibraryService::serveMatch(const std::vector<std::string> &distinct)
{
    serve::JobSet set;
    for (const LibraryEntry &entry : lib.entries)
        set.addDesignJson(entry.design.toJson());
    std::vector<int> ids;
    for (int i = 0; i < static_cast<int>(lib.entries.size()); ++i)
        ids.push_back(i);
    for (const std::string &workload : distinct)
        set.addMatchJob(workload, ids, options.match.applyTuning,
                        options.smallSize);
    serve::ServeOutcome outcome =
        serve::serveJobs(set, serveOptions());
    mergedLog += serve::mergedJsonl(set, outcome.rows);
    summaries.push_back(outcome.summary);
    // Memoize the shipped scores; failed rows (abandoned shards) are
    // simply absent — matchAndRecord backfills them in-process with
    // the same pure scoring, so the final record set is identical.
    for (size_t j = 0; j < outcome.rows.size(); ++j) {
        const serve::ResultRow &row = outcome.rows[j];
        if (!row.ok)
            continue;
        for (const serve::WireScore &score : row.scores) {
            KernelRecord record;
            record.kernel = set.jobs[j].workload;
            record.feasible = score.feasible;
            record.score = score.score;
            record.ipc = score.ipc;
            record.variant = score.variant;
            record.bottleneck = score.bottleneck;
            lib.entries[static_cast<size_t>(score.design)]
                .upsertRecord(std::move(record));
        }
    }
}

void
LibraryService::serveWarm(const std::vector<std::string> &misses)
{
    serve::JobSet set;
    for (const std::string &workload : misses) {
        set.addWarmJob(workload,
                       warmSeedFor(workload, options.warmSeedSalt),
                       options.warmIterations,
                       options.match.applyTuning, options.smallSize);
    }
    serve::ServeOutcome outcome =
        serve::serveJobs(set, serveOptions());
    mergedLog += serve::mergedJsonl(set, outcome.rows);
    summaries.push_back(outcome.summary);
    // Insert in job order (first-miss order), never completion order.
    for (size_t j = 0; j < outcome.rows.size(); ++j) {
        const serve::ResultRow &row = outcome.rows[j];
        const serve::JobSpec &job = set.jobs[j];
        std::string error;
        std::optional<LibraryEntry> entry;
        if (row.ok && !row.payload.isNull())
            entry = LibraryEntry::fromJson(row.payload, &error);
        if (!entry) {
            // Abandoned or mangled row: recompute in-process. The
            // entry is a pure function of the job, so the library
            // bytes still match a crash-free run.
            OG_WARN("serve warm for '", job.workload,
                    "' returned no entry (",
                    row.ok ? error : row.diagnostic,
                    "); warming in-process");
            entry = warmOverlay(job.workload, job.smallSize,
                                job.applyTuning, job.warmSeed,
                                job.warmIterations, options.match);
        }
        lib.insert(std::move(*entry));
    }
}

std::vector<RequestOutcome>
LibraryService::processBatch(const std::vector<std::string> &workloads)
{
    std::vector<RequestOutcome> outcomes(workloads.size());
    std::vector<std::string> distinct;
    std::set<std::string> seen;
    for (const std::string &workload : workloads) {
        if (seen.insert(workload).second)
            distinct.push_back(workload);
    }

    if (options.useServer) {
        // Train the shared resource model before any fork, so every
        // worker inherits it instead of re-training per process.
        model::FpgaResourceModel::defaultModel();
    }

    // Phase A: match every distinct workload against the library as
    // admitted (server mode ships the scoring to the workers; the
    // in-process matchAndRecord then reads the memoized records).
    if (options.useServer && !lib.entries.empty() && !distinct.empty())
        serveMatch(distinct);
    std::map<std::string, MatchResult> picks;
    std::set<std::string> admissionHits;
    for (const std::string &workload : distinct) {
        picks[workload] =
            matchAndRecord(lib, specFor(workload), options.match);
        if (picks[workload].hit())
            admissionHits.insert(workload);
    }

    // Phase B: warm distinct misses in first-miss order.
    std::vector<std::string> misses;
    for (const std::string &workload : distinct)
        if (!picks[workload].hit())
            misses.push_back(workload);
    if (!misses.empty()) {
        if (options.useServer) {
            serveWarm(misses);
        } else {
            for (const std::string &workload : misses) {
                lib.insert(warmOverlay(
                    workload, options.smallSize,
                    options.match.applyTuning,
                    warmSeedFor(workload, options.warmSeedSalt),
                    options.warmIterations, options.match));
            }
        }
        // Phase C: re-match the misses against the grown library.
        for (const std::string &workload : misses) {
            picks[workload] =
                matchAndRecord(lib, specFor(workload), options.match);
        }
    }

    std::set<std::string> warmedSet(misses.begin(), misses.end());
    for (size_t i = 0; i < workloads.size(); ++i) {
        RequestOutcome &outcome = outcomes[i];
        outcome.workload = workloads[i];
        outcome.hit = admissionHits.count(workloads[i]) > 0;
        outcome.warmed = warmedSet.count(workloads[i]) > 0;
        const MatchResult &pick = picks[workloads[i]];
        outcome.entryIndex = pick.entryIndex;
        outcome.record = pick.record;
    }
    return outcomes;
}

} // namespace overgen::library
