#ifndef OVERGEN_LIBRARY_MATCHER_H
#define OVERGEN_LIBRARY_MATCHER_H

/**
 * @file
 * Routing an incoming KernelSpec to the best feasible stored overlay.
 *
 * Scoring reuses the pieces that are already cheap: schedule
 * feasibility via the first-fit variant walk (paper Fig. 3's "relax
 * DFG complexity" loop) and the split performance model
 * (precomputeTilePerf + combineSystemPerf, bit-identical to
 * estimateIpc). The score is the model IPC derated by the schedule's
 * pipeline-imbalance throughput factor — exactly the per-kernel
 * quantity the DSE objective aggregates, so the matcher's ranking
 * agrees with what the explorer optimizes for.
 *
 * Determinism: per-entry scores are pure functions of (entry,
 * kernel); parallel evaluation stores results index-ordered
 * (ThreadPool::parallelMap) and the argmax scan is sequential with a
 * lowest-index tie break, so the pick is bit-identical for every
 * thread count (tests/library/matcher_test.cc pins this against an
 * exhaustive oracle scan).
 */

#include "library/store.h"
#include "model/perf.h"
#include "workloads/kernelspec.h"

namespace overgen::library {

/** Matcher knobs. */
struct MatchOptions
{
    /** Compile variants with OverGen source tuning. */
    bool applyTuning = false;
    /** Worker threads for scoring entries that have no memoized
     * record yet (1 = inline serial; the pick is identical for every
     * value). */
    int threads = 1;
    model::PerfConfig perf;
};

/** The matcher's verdict for one request. */
struct MatchResult
{
    /** Index of the winning library entry; -1 on miss (no feasible
     * entry, or an empty library). */
    int entryIndex = -1;
    /** The winning entry's score record (default-initialized on
     * miss). */
    KernelRecord record;

    bool hit() const { return entryIndex >= 0; }
};

/**
 * Score one kernel against one stored design: compile the variant
 * family, first-fit schedule it, and evaluate the split perf model
 * with the schedule-implied stream backings. Infeasible (no variant
 * schedules) yields feasible=false, score 0.
 */
KernelRecord scoreKernelOnDesign(const wl::KernelSpec &spec,
                                 const adg::SysAdg &design,
                                 const MatchOptions &options = {});

/**
 * Route @p spec to the best feasible entry of @p lib. Entries with a
 * memoized record for this kernel cost a lookup; the rest are scored
 * (in parallel across options.threads) without mutating the library.
 */
MatchResult matchKernel(const OverlayLibrary &lib,
                        const wl::KernelSpec &spec,
                        const MatchOptions &options = {});

/**
 * matchKernel, but newly computed scores are memoized into the
 * entries' record lists — the persistent per-kernel perf records the
 * library stores. Record content is identical to what matchKernel
 * computes, so warming the records never changes a future pick.
 */
MatchResult matchAndRecord(OverlayLibrary &lib,
                           const wl::KernelSpec &spec,
                           const MatchOptions &options = {});

} // namespace overgen::library

#endif // OVERGEN_LIBRARY_MATCHER_H
