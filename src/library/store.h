#ifndef OVERGEN_LIBRARY_STORE_H
#define OVERGEN_LIBRARY_STORE_H

/**
 * @file
 * The persistent overlay library: pre-generated (sysADG, resource
 * footprint, per-kernel perf records) entries on disk as JSONL, one
 * entry per line, byte-stable under the serve/wire dump conventions
 * (sorted object keys, %.17g doubles, hex-encoded 64-bit values).
 *
 * This is the production analogue of the paper's premise — a
 * domain-specific overlay amortizes FPGA compilation across many
 * kernels — turned into a cache of hardware: incoming kernels are
 * matched against stored overlays (library/matcher.h) instead of
 * re-running DSE per request, and misses warm the library
 * (library/service.h). See DESIGN.md "Overlay library and matching".
 *
 * Durability contract: load() skips corrupted, truncated, or
 * fingerprint-mismatched lines with a counted diagnostic instead of
 * aborting — a partially-written library (a crash mid-save, a torn
 * concurrent append) degrades to fewer warm entries, never to a dead
 * service. save/load/save round-trips are byte-identical: entries
 * hold canonical designs (canonicalDesign()) whose JSON encodings are
 * fixed points of SysAdg::fromJson/toJson.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "adg/adg.h"
#include "common/json.h"
#include "model/resources.h"

namespace overgen::library {

/** One kernel's match score against one library entry — the memoized
 * output of matcher::scoreKernelOnDesign (library/matcher.h). */
struct KernelRecord
{
    std::string kernel;      //!< workload name (record key)
    bool feasible = false;   //!< some variant scheduled onto the entry
    double score = 0.0;      //!< model IPC x schedule throughput factor
    double ipc = 0.0;        //!< split-perf-model IPC estimate
    std::string variant;     //!< first-fit variant name
    std::string bottleneck;  //!< perf-model limiting level
};

/** One stored overlay. */
struct LibraryEntry
{
    /** Double-salted structural fingerprint of `design` (tile ADG +
     * system params; see fingerprintDesign). Persisted and
     * re-verified on load, so value corruption is caught even when
     * the JSON still parses. */
    uint64_t fpA = 0;
    uint64_t fpB = 0;
    /** The overlay design, canonicalized (see canonicalDesign). */
    adg::SysAdg design;
    /** Whole-system resource footprint (model::FpgaResourceModel). */
    model::Resources resources;
    /** Worst-resource utilization fraction on the target device. */
    double utilization = 0.0;
    /** Provenance tag, e.g. "warm:fir" or "seed". */
    std::string origin;
    /** DSE seed/budget that produced the entry (0 for seeded/manual
     * entries) — enough to reproduce the warm run. */
    uint64_t warmSeed = 0;
    int warmIterations = 0;
    /** Per-kernel match records, kept sorted by kernel name so entry
     * bytes are independent of record-computation order. */
    std::vector<KernelRecord> records;

    /** @return the record for @p kernel, or null. */
    const KernelRecord *findRecord(const std::string &kernel) const;

    /** Insert or overwrite the record for record.kernel (sorted). */
    void upsertRecord(KernelRecord record);

    Json toJson() const;

    /**
     * Decode one entry; @return nullopt (with @p error set) on any
     * missing or ill-typed field instead of dying — load() counts
     * these as skipped lines. The fingerprint is NOT re-verified
     * here; OverlayLibrary::load does that with the decoded design.
     */
    static std::optional<LibraryEntry> fromJson(const Json &json,
                                                std::string *error);
};

/** Per-load diagnostic counters (OverlayLibrary::lastLoad). */
struct LoadStats
{
    uint64_t entries = 0;             //!< lines kept
    uint64_t skippedParse = 0;        //!< not valid JSON (truncation)
    uint64_t skippedFields = 0;       //!< missing/ill-typed fields
    uint64_t skippedFingerprint = 0;  //!< stored fp != recomputed fp

    uint64_t
    skipped() const
    {
        return skippedParse + skippedFields + skippedFingerprint;
    }
};

/**
 * @return @p design re-encoded through its own JSON round-trip.
 * Adg::fromJson remaps node/edge ids densely, so a post-DSE design
 * (sparse ids from mutation tombstones) changes encoding on its
 * first round-trip; after one pass the encoding is a fixed point,
 * which the library's byte-stability contract depends on. Entries
 * must store canonical designs (insert() enforces the fingerprint
 * side of this).
 */
adg::SysAdg canonicalDesign(const adg::SysAdg &design);

/**
 * Double-salted library fingerprint of a canonical design: the tile
 * ADG's structural fingerprintPair under library-specific salts
 * (distinct from the DSE eval cache's), mixed with a hash of the
 * system parameters — two entries differing only in tile count or L2
 * geometry fingerprint differently.
 */
std::pair<uint64_t, uint64_t>
fingerprintDesign(const adg::SysAdg &design);

/** The in-memory library: an ordered entry list with fingerprint
 * dedup. Insertion order is the on-disk line order, so identical
 * insert sequences produce identical files. */
class OverlayLibrary
{
  public:
    std::vector<LibraryEntry> entries;
    /** Counters of the most recent load(). */
    LoadStats lastLoad;

    /**
     * Insert @p entry, canonicalizing its design and recomputing its
     * fingerprints. When an entry with the same fingerprint pair
     * already exists, its records are merged into the existing entry
     * instead (first insertion wins the metadata). @return the
     * entry's index.
     */
    size_t insert(LibraryEntry entry);

    /** @return the index of the entry with this fingerprint pair,
     * or nullopt. */
    std::optional<size_t> findByFingerprint(uint64_t a,
                                            uint64_t b) const;

    /** The full library as byte-stable JSONL (one entry per line,
     * trailing newline per line). */
    std::string toJsonl() const;

    /** Write toJsonl() to @p path. @return false when the file could
     * not be opened. */
    bool save(const std::string &path) const;

    /**
     * Replace the contents with the entries of @p path, skipping
     * undecodable lines with an OG_WARN diagnostic and counting them
     * in lastLoad. @return false when the file does not exist (the
     * library is left empty — a cold start, not an error).
     */
    bool load(const std::string &path);
};

} // namespace overgen::library

#endif // OVERGEN_LIBRARY_STORE_H
