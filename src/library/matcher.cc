#include "library/matcher.h"

#include <utility>

#include "common/parallel.h"
#include "compiler/compile.h"
#include "sched/schedule.h"
#include "sched/scheduler.h"

namespace overgen::library {

namespace {

/** Gathered scores for every entry: memoized records where present,
 * freshly computed (index-ordered, thread-count-invariant) where
 * not. computedAt[i] >= 0 maps entry i to its slot in `computed`. */
struct ScoreTable
{
    std::vector<const KernelRecord *> cached;
    std::vector<KernelRecord> computed;
    std::vector<int> computedAt;

    const KernelRecord &
    of(size_t entry) const
    {
        return cached[entry] != nullptr
                   ? *cached[entry]
                   : computed[static_cast<size_t>(
                         computedAt[entry])];
    }
};

ScoreTable
gatherScores(const OverlayLibrary &lib, const wl::KernelSpec &spec,
             const MatchOptions &options)
{
    ScoreTable table;
    table.cached.assign(lib.entries.size(), nullptr);
    table.computedAt.assign(lib.entries.size(), -1);
    std::vector<size_t> missing;
    for (size_t i = 0; i < lib.entries.size(); ++i) {
        table.cached[i] = lib.entries[i].findRecord(spec.name);
        if (table.cached[i] == nullptr) {
            table.computedAt[i] = static_cast<int>(missing.size());
            missing.push_back(i);
        }
    }
    if (missing.empty())
        return table;
    ThreadPool pool(options.threads);
    table.computed = pool.parallelMap(missing.size(), [&](size_t j) {
        return scoreKernelOnDesign(spec, lib.entries[missing[j]].design,
                                   options);
    });
    return table;
}

/** Sequential argmax over feasible entries; strict > means the
 * lowest index wins ties, independent of how scores were computed. */
MatchResult
pickBest(const ScoreTable &table, size_t entryCount)
{
    MatchResult result;
    for (size_t i = 0; i < entryCount; ++i) {
        const KernelRecord &record = table.of(i);
        if (!record.feasible)
            continue;
        if (result.entryIndex < 0 || record.score > result.record.score) {
            result.entryIndex = static_cast<int>(i);
            result.record = record;
        }
    }
    return result;
}

} // namespace

KernelRecord
scoreKernelOnDesign(const wl::KernelSpec &spec,
                    const adg::SysAdg &design,
                    const MatchOptions &options)
{
    KernelRecord record;
    record.kernel = spec.name;
    compiler::CompileOptions copts;
    copts.applyTuning = options.applyTuning;
    auto variants = compiler::compileVariants(spec, copts);
    sched::SpatialScheduler scheduler(design.adg);
    auto fit = scheduler.scheduleFirstFit(variants);
    if (!fit)
        return record;
    const dfg::Mdfg &mdfg = variants[fit->second];
    record.feasible = true;
    record.variant = mdfg.name;
    model::BackingVec backing =
        sched::backingFromSchedule(fit->first, design.adg, mdfg);
    model::TilePerfSummary summary =
        model::precomputeTilePerf(mdfg, backing, design.adg);
    model::PerfBreakdown perf =
        model::combineSystemPerf(summary, design.sys, options.perf);
    record.ipc = perf.ipc;
    record.bottleneck = perf.bottleneck;
    record.score = perf.ipc * fit->first.throughputFactor();
    return record;
}

MatchResult
matchKernel(const OverlayLibrary &lib, const wl::KernelSpec &spec,
            const MatchOptions &options)
{
    ScoreTable table = gatherScores(lib, spec, options);
    return pickBest(table, lib.entries.size());
}

MatchResult
matchAndRecord(OverlayLibrary &lib, const wl::KernelSpec &spec,
               const MatchOptions &options)
{
    ScoreTable table = gatherScores(lib, spec, options);
    MatchResult result = pickBest(table, lib.entries.size());
    for (size_t i = 0; i < lib.entries.size(); ++i) {
        if (table.cached[i] == nullptr)
            lib.entries[i].upsertRecord(std::move(
                table.computed[static_cast<size_t>(
                    table.computedAt[i])]));
    }
    return result;
}

} // namespace overgen::library
