#include "library/store.h"

#include <algorithm>
#include <cstdio>

#include "common/hex.h"
#include "common/logging.h"

namespace overgen::library {

namespace {

/** Library fingerprint salts — distinct from the DSE eval cache's
 * (0 and 0x517cc1b727220a95), so a hypothetical collision in one
 * keyspace cannot leak into the other. */
constexpr uint64_t kSaltA = 0x9e3779b97f4a7c15ull;
constexpr uint64_t kSaltB = 0xd1b54a32d192ed03ull;

/** splitmix64-style finalizer for mixing system params in. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

uint64_t
systemParamsHash(const adg::SystemParams &sys)
{
    uint64_t h = mix64(static_cast<uint64_t>(sys.numTiles));
    h = mix64(h ^ static_cast<uint64_t>(sys.l2Banks));
    h = mix64(h ^ static_cast<uint64_t>(sys.l2CapacityKiB));
    h = mix64(h ^ static_cast<uint64_t>(sys.nocBytes));
    h = mix64(h ^ static_cast<uint64_t>(sys.dramChannels));
    return h;
}

/** @name Non-fatal field extraction for LibraryEntry::fromJson. */
/// @{
bool
getString(const Json &obj, const char *key, std::string &out,
          std::string *error)
{
    if (!obj.contains(key) || !obj.at(key).isString()) {
        if (error != nullptr)
            *error = std::string("missing/ill-typed string field '") +
                     key + "'";
        return false;
    }
    out = obj.at(key).asString();
    return true;
}

bool
getNumber(const Json &obj, const char *key, double &out,
          std::string *error)
{
    if (!obj.contains(key) || !obj.at(key).isNumber()) {
        if (error != nullptr)
            *error = std::string("missing/ill-typed number field '") +
                     key + "'";
        return false;
    }
    out = obj.at(key).asNumber();
    return true;
}

bool
getBool(const Json &obj, const char *key, bool &out,
        std::string *error)
{
    if (!obj.contains(key) || !obj.at(key).isBool()) {
        if (error != nullptr)
            *error = std::string("missing/ill-typed bool field '") +
                     key + "'";
        return false;
    }
    out = obj.at(key).asBool();
    return true;
}

bool
getHex64(const Json &obj, const char *key, uint64_t &out,
         std::string *error)
{
    std::string text;
    if (!getString(obj, key, text, error))
        return false;
    if (!tryParseHexU64(text, out)) {
        if (error != nullptr)
            *error = std::string("bad hex64 value in field '") + key +
                     "'";
        return false;
    }
    return true;
}
/// @}

Json
recordToJson(const KernelRecord &record)
{
    Json obj = Json::makeObject();
    obj.set("kernel", Json(record.kernel));
    obj.set("feasible", Json(record.feasible));
    obj.set("score", Json(record.score));
    obj.set("ipc", Json(record.ipc));
    if (!record.variant.empty())
        obj.set("variant", Json(record.variant));
    if (!record.bottleneck.empty())
        obj.set("bottleneck", Json(record.bottleneck));
    return obj;
}

std::optional<KernelRecord>
recordFromJson(const Json &json, std::string *error)
{
    if (!json.isObject()) {
        if (error != nullptr)
            *error = "record is not an object";
        return std::nullopt;
    }
    KernelRecord record;
    if (!getString(json, "kernel", record.kernel, error) ||
        !getBool(json, "feasible", record.feasible, error) ||
        !getNumber(json, "score", record.score, error) ||
        !getNumber(json, "ipc", record.ipc, error))
        return std::nullopt;
    if (json.contains("variant")) {
        if (!getString(json, "variant", record.variant, error))
            return std::nullopt;
    }
    if (json.contains("bottleneck")) {
        if (!getString(json, "bottleneck", record.bottleneck, error))
            return std::nullopt;
    }
    return record;
}

} // namespace

const KernelRecord *
LibraryEntry::findRecord(const std::string &kernel) const
{
    auto it = std::lower_bound(
        records.begin(), records.end(), kernel,
        [](const KernelRecord &r, const std::string &k) {
            return r.kernel < k;
        });
    if (it == records.end() || it->kernel != kernel)
        return nullptr;
    return &*it;
}

void
LibraryEntry::upsertRecord(KernelRecord record)
{
    auto it = std::lower_bound(
        records.begin(), records.end(), record.kernel,
        [](const KernelRecord &r, const std::string &k) {
            return r.kernel < k;
        });
    if (it != records.end() && it->kernel == record.kernel)
        *it = std::move(record);
    else
        records.insert(it, std::move(record));
}

Json
LibraryEntry::toJson() const
{
    Json obj = Json::makeObject();
    obj.set("fp_a", Json(hexU64(fpA)));
    obj.set("fp_b", Json(hexU64(fpB)));
    obj.set("design", design.toJson());
    Json res = Json::makeObject();
    res.set("lut", Json(resources.lut));
    res.set("ff", Json(resources.ff));
    res.set("bram", Json(resources.bram));
    res.set("dsp", Json(resources.dsp));
    obj.set("resources", std::move(res));
    obj.set("utilization", Json(utilization));
    obj.set("origin", Json(origin));
    if (warmSeed != 0)
        obj.set("warm_seed", Json(hexU64(warmSeed)));
    if (warmIterations != 0)
        obj.set("warm_iters", Json(warmIterations));
    Json recordArray = Json::makeArray();
    for (const KernelRecord &record : records)
        recordArray.push(recordToJson(record));
    obj.set("records", std::move(recordArray));
    return obj;
}

std::optional<LibraryEntry>
LibraryEntry::fromJson(const Json &json, std::string *error)
{
    if (!json.isObject()) {
        if (error != nullptr)
            *error = "entry is not an object";
        return std::nullopt;
    }
    LibraryEntry entry;
    if (!getHex64(json, "fp_a", entry.fpA, error) ||
        !getHex64(json, "fp_b", entry.fpB, error) ||
        !getNumber(json, "utilization", entry.utilization, error) ||
        !getString(json, "origin", entry.origin, error))
        return std::nullopt;
    if (!json.contains("design") || !json.at("design").isObject() ||
        !json.at("design").contains("adg") ||
        !json.at("design").contains("system")) {
        if (error != nullptr)
            *error = "missing/ill-typed design field";
        return std::nullopt;
    }
    entry.design = adg::SysAdg::fromJson(json.at("design"));
    if (!json.contains("resources") ||
        !json.at("resources").isObject()) {
        if (error != nullptr)
            *error = "missing/ill-typed resources field";
        return std::nullopt;
    }
    const Json &res = json.at("resources");
    if (!getNumber(res, "lut", entry.resources.lut, error) ||
        !getNumber(res, "ff", entry.resources.ff, error) ||
        !getNumber(res, "bram", entry.resources.bram, error) ||
        !getNumber(res, "dsp", entry.resources.dsp, error))
        return std::nullopt;
    if (json.contains("warm_seed")) {
        if (!getHex64(json, "warm_seed", entry.warmSeed, error))
            return std::nullopt;
    }
    if (json.contains("warm_iters")) {
        if (!json.at("warm_iters").isNumber()) {
            if (error != nullptr)
                *error = "ill-typed warm_iters field";
            return std::nullopt;
        }
        entry.warmIterations =
            static_cast<int>(json.at("warm_iters").asInt());
    }
    if (!json.contains("records") || !json.at("records").isArray()) {
        if (error != nullptr)
            *error = "missing/ill-typed records field";
        return std::nullopt;
    }
    for (const Json &recordJson : json.at("records").asArray()) {
        auto record = recordFromJson(recordJson, error);
        if (!record)
            return std::nullopt;
        entry.upsertRecord(std::move(*record));
    }
    return entry;
}

adg::SysAdg
canonicalDesign(const adg::SysAdg &design)
{
    return adg::SysAdg::fromJson(design.toJson());
}

std::pair<uint64_t, uint64_t>
fingerprintDesign(const adg::SysAdg &design)
{
    std::pair<uint64_t, uint64_t> fp =
        design.adg.fingerprintPair(kSaltA, kSaltB);
    uint64_t sysHash = systemParamsHash(design.sys);
    return { mix64(fp.first ^ sysHash),
             mix64(fp.second ^ mix64(sysHash)) };
}

size_t
OverlayLibrary::insert(LibraryEntry entry)
{
    entry.design = canonicalDesign(entry.design);
    std::tie(entry.fpA, entry.fpB) = fingerprintDesign(entry.design);
    if (auto existing = findByFingerprint(entry.fpA, entry.fpB)) {
        LibraryEntry &target = entries[*existing];
        for (KernelRecord &record : entry.records)
            target.upsertRecord(std::move(record));
        return *existing;
    }
    entries.push_back(std::move(entry));
    return entries.size() - 1;
}

std::optional<size_t>
OverlayLibrary::findByFingerprint(uint64_t a, uint64_t b) const
{
    for (size_t i = 0; i < entries.size(); ++i)
        if (entries[i].fpA == a && entries[i].fpB == b)
            return i;
    return std::nullopt;
}

std::string
OverlayLibrary::toJsonl() const
{
    std::string out;
    for (const LibraryEntry &entry : entries) {
        out += entry.toJson().dump();
        out += '\n';
    }
    return out;
}

bool
OverlayLibrary::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::string text = toJsonl();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
}

bool
OverlayLibrary::load(const std::string &path)
{
    entries.clear();
    lastLoad = {};
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return false;
    std::string text;
    char chunk[4096];
    size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        text.append(chunk, n);
    std::fclose(f);

    size_t lineStart = 0;
    size_t lineNumber = 0;
    while (lineStart < text.size()) {
        size_t lineEnd = text.find('\n', lineStart);
        // A line without a trailing newline is a torn final write;
        // still decoded (it parses or it doesn't).
        if (lineEnd == std::string::npos)
            lineEnd = text.size();
        std::string line =
            text.substr(lineStart, lineEnd - lineStart);
        lineStart = lineEnd + 1;
        ++lineNumber;
        if (line.empty())
            continue;

        std::string error;
        std::optional<Json> json = Json::tryParse(line, &error);
        if (!json) {
            ++lastLoad.skippedParse;
            OG_WARN("library '", path, "' line ", lineNumber,
                    ": skipped (", error, ")");
            continue;
        }
        auto entry = LibraryEntry::fromJson(*json, &error);
        if (!entry) {
            ++lastLoad.skippedFields;
            OG_WARN("library '", path, "' line ", lineNumber,
                    ": skipped (", error, ")");
            continue;
        }
        std::pair<uint64_t, uint64_t> fp =
            fingerprintDesign(entry->design);
        if (fp.first != entry->fpA || fp.second != entry->fpB) {
            ++lastLoad.skippedFingerprint;
            OG_WARN("library '", path, "' line ", lineNumber,
                    ": skipped (fingerprint mismatch: stored ",
                    hexU64(entry->fpA), "/", hexU64(entry->fpB),
                    ", recomputed ", hexU64(fp.first), "/",
                    hexU64(fp.second), ")");
            continue;
        }
        insert(std::move(*entry));
        ++lastLoad.entries;
    }
    return true;
}

} // namespace overgen::library
