#ifndef OVERGEN_LIBRARY_SERVICE_H
#define OVERGEN_LIBRARY_SERVICE_H

/**
 * @file
 * The request-serving layer over the overlay library: admit a batch
 * of kernel requests, match each against the library
 * (library/matcher.h), warm the library with a bounded DSE run per
 * distinct miss, and re-match the misses against the grown library.
 *
 * Batched-admission determinism contract: the library file produced
 * by replaying a request trace is a pure function of the trace —
 * independent of worker count, in-process vs server execution, and
 * crash/retry scheduling. The pieces that make that true:
 *  - warm DSE seeds are a pure function of the workload name
 *    (warmSeedFor), and the DSE trajectory is thread-count-invariant;
 *  - new entries are inserted in first-miss order (job order), never
 *    completion order;
 *  - per-kernel records are memoized values of pure scoring functions
 *    and kept name-sorted inside each entry, so the record *set* —
 *    not the computation schedule — determines the bytes;
 *  - serve-layer rows are pure functions of their JobSpec, so
 *    straggler duplicates and crash retries reproduce the same row.
 *
 * Server mode (ServiceOptions::useServer) routes Match and Warm jobs
 * through the serve coordinator (forked workers, crash recovery,
 * straggler duplication); the library job handler is installed via
 * CoordinatorOptions::handler, keeping serve free of any library
 * dependency. Rows that fail server-side (abandoned after repeated
 * crashes) are backfilled in-process with the same pure functions, so
 * even a degraded run converges to identical library bytes.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "library/matcher.h"
#include "serve/coordinator.h"

namespace overgen::library {

/** Service knobs. */
struct ServiceOptions
{
    MatchOptions match;
    /** DSE iteration budget of one warm run. */
    int warmIterations = 8;
    /** Salt mixed into warmSeedFor so deployments can shift the whole
     * seed space without touching per-workload determinism. */
    uint64_t warmSeedSalt = 0x5eedf00dcafe2026ull;
    /** Use the shrunken test-size workload table (serve smallSize
     * convention; scoring and DSE never simulate, so this mostly
     * affects compile/variant shapes). */
    bool smallSize = false;
    /** Route Match/Warm jobs through the serve coordinator (forked
     * workers) instead of running them in-process. */
    bool useServer = false;
    /** Coordinator knobs for server mode (handler is installed by the
     * service; anything set here is preserved). */
    serve::CoordinatorOptions serve;
};

/** Per-request outcome of one processBatch call. */
struct RequestOutcome
{
    std::string workload;
    /** The request matched an existing entry at admission time. */
    bool hit = false;
    /** The request's workload was warmed by this batch (every
     * request of a missed workload in the batch shares the warm). */
    bool warmed = false;
    /** Final routing: the library entry serving this request (-1 when
     * even the warmed overlay cannot schedule the kernel). */
    int entryIndex = -1;
    KernelRecord record;
};

/**
 * The DSE fallback of one miss: explore an overlay for @p workload
 * with a fixed (seed, iterations) budget and package the result as a
 * library entry (canonical design, fingerprints, resource footprint,
 * and the kernel's own score record). Pure: identical arguments give
 * identical entries, in any process.
 */
LibraryEntry warmOverlay(const std::string &workload, bool smallSize,
                         bool applyTuning, uint64_t seed,
                         int iterations,
                         const MatchOptions &options = {});

/**
 * The serve-layer executor for library jobs: scores Match jobs
 * against the shard's design table and runs warmOverlay for Warm
 * jobs (payload = the entry's JSON). Install on
 * CoordinatorOptions::handler / WorkerOptions::handler.
 */
serve::JobHandler makeLibraryHandler(MatchOptions options = {});

/** A long-lived library + matcher + warmer (see file comment). */
class LibraryService
{
  public:
    explicit LibraryService(ServiceOptions options = {},
                            OverlayLibrary lib = {});

    /**
     * Admit a batch of requests (workload names, duplicates allowed):
     * match all, warm distinct misses in first-miss order, re-match
     * the misses, and return one outcome per request (input order).
     */
    std::vector<RequestOutcome>
    processBatch(const std::vector<std::string> &workloads);

    OverlayLibrary &library() { return lib; }
    const OverlayLibrary &library() const { return lib; }

    /** One summary per serveJobs call made in server mode. */
    const std::vector<serve::ServeSummary> &
    serveSummaries() const
    {
        return summaries;
    }

    /** Concatenated merged JSONL of every serve call (byte-stable
     * across worker counts; the warming tests compare it). */
    const std::string &serveLog() const { return mergedLog; }

    /** The warm DSE seed of @p workload: a pure function of the name
     * (FNV-1a) mixed with @p salt, so replays and retries agree. */
    static uint64_t warmSeedFor(const std::string &workload,
                                uint64_t salt);

  private:
    void serveMatch(const std::vector<std::string> &distinct);
    void serveWarm(const std::vector<std::string> &misses);
    wl::KernelSpec specFor(const std::string &workload) const;
    serve::CoordinatorOptions serveOptions() const;

    OverlayLibrary lib;
    ServiceOptions options;
    std::vector<serve::ServeSummary> summaries;
    std::string mergedLog;
};

} // namespace overgen::library

#endif // OVERGEN_LIBRARY_SERVICE_H
