#include "model/resource_model.h"

#include <mutex>

#include "common/logging.h"
#include "model/oracle.h"

namespace overgen::model {

namespace {

std::vector<double>
resourcesToTargets(const Resources &r)
{
    return { r.lut, r.ff, r.bram, r.dsp };
}

Resources
targetsToResources(const std::vector<double> &t)
{
    OG_ASSERT(t.size() == 4, "bad target vector");
    return { t[0], t[1], t[2], t[3] };
}

/** Random PE spec sampler covering the DSE design space. */
adg::PeSpec
samplePe(Rng &rng)
{
    adg::PeSpec pe;
    const int widths[] = { 8, 16, 32, 64 };
    pe.datapathBytes = widths[rng.nextBelow(4)];
    pe.maxDelayFifoDepth = static_cast<int>(rng.nextRange(2, 16));
    pe.controlLut = rng.nextBool(0.3);
    const DataType types[] = { DataType::I8,  DataType::I16,
                               DataType::I32, DataType::I64,
                               DataType::F32, DataType::F64 };
    int cap_count = static_cast<int>(rng.nextRange(1, 20));
    const auto &ops = allOpcodes();
    for (int c = 0; c < cap_count; ++c) {
        Opcode op = ops[rng.nextBelow(ops.size())];
        DataType type = types[rng.nextBelow(6)];
        if (dataTypeIsFloat(type) &&
            (op == Opcode::Shl || op == Opcode::Shr ||
             op == Opcode::And || op == Opcode::Or ||
             op == Opcode::Xor)) {
            continue;
        }
        if (!dataTypeIsFloat(type) && op == Opcode::Sqrt)
            continue;
        pe.capabilities.insert({ op, type });
    }
    if (pe.capabilities.empty())
        pe.capabilities.insert({ Opcode::Add, DataType::I64 });
    return pe;
}

adg::PortSpec
samplePort(Rng &rng)
{
    adg::PortSpec port;
    const int widths[] = { 4, 8, 16, 32, 64 };
    port.widthBytes = widths[rng.nextBelow(5)];
    port.fifoDepth = static_cast<int>(rng.nextRange(2, 32));
    port.padding = rng.nextBool();
    port.statedStream = rng.nextBool();
    return port;
}

} // namespace

std::vector<double>
peFeatures(const adg::PeSpec &pe)
{
    double int_caps = 0, flt_caps = 0, div_sqrt = 0, mul = 0;
    double max_latency = 0;
    for (const FuCapability &cap : pe.capabilities) {
        if (dataTypeIsFloat(cap.type))
            flt_caps += 1;
        else
            int_caps += 1;
        if (cap.op == Opcode::Div || cap.op == Opcode::Sqrt)
            div_sqrt += 1;
        if (cap.op == Opcode::Mul)
            mul += 1;
        max_latency = std::max(
            max_latency,
            static_cast<double>(opProperties(cap.op, cap.type).latency));
        // Total FU byte-width drives the dominant cost.
    }
    double total_lanes = 0;
    for (const FuCapability &cap : pe.capabilities)
        total_lanes += subwordLanes(pe.datapathBytes, cap.type);
    return { static_cast<double>(pe.datapathBytes),
             int_caps,
             flt_caps,
             div_sqrt,
             mul,
             total_lanes,
             max_latency,
             static_cast<double>(pe.maxDelayFifoDepth),
             pe.controlLut ? 1.0 : 0.0 };
}

std::vector<double>
switchFeatures(const adg::SwitchSpec &sw, int radix)
{
    return { static_cast<double>(sw.datapathBytes),
             static_cast<double>(radix),
             static_cast<double>(sw.datapathBytes) * radix * radix };
}

std::vector<double>
portFeatures(const adg::PortSpec &port)
{
    return { static_cast<double>(port.widthBytes),
             static_cast<double>(port.fifoDepth),
             port.padding ? 1.0 : 0.0,
             port.statedStream ? 1.0 : 0.0,
             static_cast<double>(port.widthBytes) * port.fifoDepth };
}

FpgaResourceModel
FpgaResourceModel::train(const ResourceModelConfig &config)
{
    FpgaResourceModel model;
    model.pessimism = config.pessimism;
    Rng rng(config.seed);

    // PEs.
    {
        std::vector<std::vector<double>> x, y;
        for (int i = 0; i < config.peSamples; ++i) {
            adg::Node node;
            node.kind = adg::NodeKind::Pe;
            node.spec = samplePe(rng);
            x.push_back(peFeatures(node.pe()));
            y.push_back(resourcesToTargets(synthesizeNode(node, 3)));
        }
        model.peMlp = std::make_unique<Mlp>(
            static_cast<int>(x[0].size()), std::vector<int>{ 48, 24 },
            4, config.seed + 1);
        model.peMlp->train(x, y, config.train);
    }
    // Switches.
    {
        std::vector<std::vector<double>> x, y;
        for (int i = 0; i < config.switchSamples; ++i) {
            adg::Node node;
            node.kind = adg::NodeKind::Switch;
            const int widths[] = { 8, 16, 32, 64 };
            node.spec = adg::SwitchSpec{
                widths[rng.nextBelow(4)] };
            int radix = static_cast<int>(rng.nextRange(2, 10));
            x.push_back(switchFeatures(node.sw(), radix));
            y.push_back(resourcesToTargets(synthesizeNode(node, radix)));
        }
        model.switchMlp = std::make_unique<Mlp>(
            static_cast<int>(x[0].size()), std::vector<int>{ 24, 12 },
            4, config.seed + 2);
        model.switchMlp->train(x, y, config.train);
    }
    // Ports (input and output trained separately, as in Table I).
    auto train_port = [&](int samples, adg::NodeKind kind,
                          uint64_t seed) {
        std::vector<std::vector<double>> x, y;
        for (int i = 0; i < samples; ++i) {
            adg::Node node;
            node.kind = kind;
            node.spec = samplePort(rng);
            x.push_back(portFeatures(node.port()));
            y.push_back(resourcesToTargets(synthesizeNode(node, 2)));
        }
        auto mlp = std::make_unique<Mlp>(
            static_cast<int>(x[0].size()), std::vector<int>{ 24, 12 },
            4, seed);
        mlp->train(x, y, config.train);
        return mlp;
    };
    model.inPortMlp = train_port(config.inPortSamples,
                                 adg::NodeKind::InPort, config.seed + 3);
    model.outPortMlp = train_port(config.outPortSamples,
                                  adg::NodeKind::OutPort,
                                  config.seed + 4);
    return model;
}

const FpgaResourceModel &
FpgaResourceModel::defaultModel()
{
    static std::once_flag once;
    static std::unique_ptr<FpgaResourceModel> instance;
    std::call_once(once, [] {
        instance = std::make_unique<FpgaResourceModel>(
            FpgaResourceModel::train());
    });
    return *instance;
}

Resources
FpgaResourceModel::predict(const Mlp &mlp, int kind_key,
                           const std::vector<double> &features) const
{
    {
        std::lock_guard<std::mutex> lock(memo->mutex);
        auto it = memo->cache.find({ kind_key, features });
        if (it != memo->cache.end())
            return it->second;
    }
    Resources r = targetsToResources(mlp.predict(features)) * pessimism;
    std::lock_guard<std::mutex> lock(memo->mutex);
    // The mutation grids keep the reachable key space small; the cap
    // is insurance against pathological callers, not a working set.
    if (memo->cache.size() < 65536)
        memo->cache.emplace(std::make_pair(kind_key, features), r);
    return r;
}

Resources
FpgaResourceModel::nodeResources(const adg::Node &node, int radix) const
{
    switch (node.kind) {
      case adg::NodeKind::Pe:
        return predict(*peMlp, static_cast<int>(node.kind),
                       peFeatures(node.pe()));
      case adg::NodeKind::Switch:
        return predict(*switchMlp, static_cast<int>(node.kind),
                       switchFeatures(node.sw(), radix));
      case adg::NodeKind::InPort:
        return predict(*inPortMlp, static_cast<int>(node.kind),
                       portFeatures(node.port()));
      case adg::NodeKind::OutPort:
        return predict(*outPortMlp, static_cast<int>(node.kind),
                       portFeatures(node.port()));
      default:
        // Few-parameter engines are exhaustively characterized: use
        // the synthesis result directly.
        return synthesizeNode(node, radix) * pessimism;
    }
}

Resources
FpgaResourceModel::tileResources(const adg::Adg &adg) const
{
    Resources total;
    for (adg::NodeId id : adg.nodeIds())
        total += nodeResources(adg.node(id), adg.radix(id));
    return total;
}

FpgaResourceModel::TileBreakdown
FpgaResourceModel::tileBreakdown(const adg::Adg &adg) const
{
    TileBreakdown breakdown;
    for (adg::NodeId id : adg.nodeIds()) {
        const adg::Node &node = adg.node(id);
        Resources r = nodeResources(node, adg.radix(id));
        switch (node.kind) {
          case adg::NodeKind::Pe:
            breakdown.pe += r;
            break;
          case adg::NodeKind::Switch:
            breakdown.network += r;
            break;
          case adg::NodeKind::InPort:
          case adg::NodeKind::OutPort:
            breakdown.ports += r;
            break;
          case adg::NodeKind::Scratchpad:
            breakdown.spad += r;
            break;
          default:
            breakdown.dma += r;
            break;
        }
    }
    return breakdown;
}

Resources
FpgaResourceModel::systemResources(const adg::SysAdg &design) const
{
    Resources tile = tileResources(design.adg);
    tile += synthesizeControlCore() * pessimism;
    Resources total = tile * static_cast<double>(design.sys.numTiles);
    total += synthesizeUncore(design.sys) * pessimism;
    return total;
}

double
FpgaResourceModel::peError() const
{
    return peMlp->validationRelativeError();
}

double
FpgaResourceModel::switchError() const
{
    return switchMlp->validationRelativeError();
}

double
FpgaResourceModel::inPortError() const
{
    return inPortMlp->validationRelativeError();
}

double
FpgaResourceModel::outPortError() const
{
    return outPortMlp->validationRelativeError();
}

} // namespace overgen::model
