#include "model/oracle.h"

#include <cmath>

#include "common/logging.h"

namespace overgen::model {

namespace {

/**
 * All cost rates below are calibrated so the oracle reproduces the
 * paper's resource *proportions* (Q4/Fig. 16): LUTs are the binding
 * resource; a fully-provisioned 512-bit "general" tile is roughly a
 * quarter of the XCVU9P; suite-specialized tiles are a tenth; the NoC
 * crossbar is one of the biggest single LUT components; scratchpads and
 * the L2 dominate BRAM; floating-point maps to DSPs.
 */

/** Deterministic +-4% pseudo-noise keyed by the parameter hash, standing
 * in for synthesis run-to-run variation in the training data. */
double
noise(uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    key *= 0xc4ceb9fe1a85ec53ull;
    key ^= key >> 33;
    double unit = static_cast<double>(key % 10007) / 10006.0;  // [0,1]
    return 1.0 + (unit - 0.5) * 0.08;
}

uint64_t
hashCombine(uint64_t h, uint64_t v)
{
    return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

/** Per-capability FU cost, at `lanes` subword lanes. */
Resources
fuCost(const FuCapability &cap, int lanes)
{
    int eb = dataTypeBytes(cap.type);
    bool flt = dataTypeIsFloat(cap.type);
    Resources r;
    if (!flt) {
        switch (cap.op) {
          case Opcode::Mul:
            r.lut = 1.0 * lanes;
            r.dsp = std::max(1.0, lanes * eb / 16.0);
            break;
          case Opcode::Div:
            r.lut = 40.0 * eb;  // iterative divider, flat per type
            break;
          case Opcode::Sqrt:
            r.lut = 35.0 * eb;
            break;
          default:
            r.lut = 0.75 * eb * lanes;  // ALU-class ops
        }
    } else {
        bool f64 = cap.type == DataType::F64;
        switch (cap.op) {
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Acc:
            r.lut = (f64 ? 20.0 : 10.0) * lanes;
            break;
          case Opcode::Mul:
            r.lut = (f64 ? 12.0 : 6.0) * lanes;
            r.dsp = (f64 ? 2.0 : 1.0) * lanes;
            break;
          case Opcode::Div:
            r.lut = f64 ? 550.0 : 300.0;
            r.dsp = 3.0;
            break;
          case Opcode::Sqrt:
            r.lut = f64 ? 500.0 : 280.0;
            r.dsp = 3.0;
            break;
          default:
            r.lut = (f64 ? 6.0 : 3.0) * lanes;  // min/max/cmp/select
        }
    }
    r.ff = r.lut * 1.2;
    return r;
}

Resources
peCost(const adg::PeSpec &pe)
{
    Resources r;
    // Firing logic, operand buffering, and configuration state.
    r.lut = 300.0 + 25.0 * pe.datapathBytes;
    r.ff = 1.3 * r.lut + 8.0 * pe.datapathBytes * pe.maxDelayFifoDepth;
    if (pe.controlLut)
        r.lut += 300.0;
    for (const FuCapability &cap : pe.capabilities) {
        int lanes = subwordLanes(pe.datapathBytes, cap.type);
        if (lanes <= 0)
            continue;
        r += fuCost(cap, lanes);
    }
    return r;
}

Resources
switchCost(const adg::SwitchSpec &sw, int radix)
{
    Resources r;
    double half = std::max(1.0, radix / 2.0);
    r.lut = 0.45 * sw.datapathBytes * half * half + 25.0 * radix;
    r.ff = 1.1 * r.lut;
    return r;
}

Resources
portCost(const adg::PortSpec &port, bool is_input)
{
    Resources r;
    r.lut = 120.0 + 22.0 * port.widthBytes +
            (port.padding ? 80.0 : 0.0) +
            (port.statedStream ? 120.0 : 0.0);
    r.ff = 8.0 * port.widthBytes * port.fifoDepth + 1.1 * r.lut;
    // Output ports carry backpressure aggregation.
    if (!is_input)
        r.lut += 60.0;
    // Deep wide FIFOs spill from LUTRAM to BRAM.
    double fifo_bytes =
        static_cast<double>(port.widthBytes) * port.fifoDepth;
    if (fifo_bytes > 2048.0)
        r.bram = std::ceil(fifo_bytes / 4096.0);
    return r;
}

Resources
dmaCost(const adg::DmaSpec &dma)
{
    Resources r;
    r.lut = 1800.0 + 40.0 * dma.bandwidthBytes +
            (dma.indirect ? 700.0 : 0.0);
    r.ff = 1.4 * r.lut;
    // ROB entries are cache-line wide; TLB adds two BRAMs.
    r.bram = std::ceil(dma.robEntries * 64.0 / 4096.0) + 2.0;
    return r;
}

Resources
spadCost(const adg::ScratchpadSpec &spad)
{
    Resources r;
    int bw = spad.readBandwidthBytes + spad.writeBandwidthBytes;
    r.lut = 500.0 + 20.0 * bw + (spad.indirect ? 600.0 : 0.0);
    r.ff = 1.2 * r.lut;
    // One BRAM36 per 4 KiB, and at least one bank per 8 bytes/cycle.
    double banks = std::max(1.0, spad.readBandwidthBytes / 8.0);
    r.bram = std::max(std::ceil(spad.capacityKiB / 4.0), banks);
    return r;
}

} // namespace

Resources
synthesizeNode(const adg::Node &node, int radix)
{
    Resources r;
    uint64_t key = hashCombine(static_cast<uint64_t>(node.kind), radix);
    switch (node.kind) {
      case adg::NodeKind::Pe:
        r = peCost(node.pe());
        key = hashCombine(key, node.pe().capabilities.size());
        key = hashCombine(key, node.pe().datapathBytes);
        break;
      case adg::NodeKind::Switch:
        r = switchCost(node.sw(), radix);
        key = hashCombine(key, node.sw().datapathBytes);
        break;
      case adg::NodeKind::InPort:
      case adg::NodeKind::OutPort:
        r = portCost(node.port(), node.kind == adg::NodeKind::InPort);
        key = hashCombine(key, node.port().widthBytes);
        key = hashCombine(key, node.port().fifoDepth);
        break;
      case adg::NodeKind::Dma:
        r = dmaCost(node.dma());
        key = hashCombine(key, node.dma().bandwidthBytes);
        break;
      case adg::NodeKind::Scratchpad:
        r = spadCost(node.spad());
        key = hashCombine(key, node.spad().capacityKiB);
        break;
      case adg::NodeKind::Recurrence:
        r.lut = 400.0 + 25.0 * node.rec().bandwidthBytes;
        r.ff = 1.2 * r.lut;
        break;
      case adg::NodeKind::Generate:
        r.lut = 350.0 + 20.0 * node.gen().bandwidthBytes;
        r.ff = 1.2 * r.lut;
        break;
      case adg::NodeKind::Register:
        r.lut = 250.0 + 10.0 * node.reg().bandwidthBytes;
        r.ff = 1.2 * r.lut;
        break;
    }
    return r * noise(key);
}

Resources
synthesizeControlCore()
{
    // Rocket with small single-issue config and 16 KiB private caches.
    return { 14000.0, 11000.0, 18.0, 4.0 };
}

Resources
synthesizeNoc(int num_tiles, int l2_banks, int noc_bytes)
{
    OG_ASSERT(num_tiles >= 1 && l2_banks >= 1, "bad NoC shape");
    double endpoints = num_tiles * 2.0 + l2_banks + 1.0;
    Resources r;
    r.lut = 1.2 * noc_bytes * endpoints * endpoints + 450.0 * endpoints;
    r.ff = 1.3 * r.lut;
    return r * noise(hashCombine(hashCombine(num_tiles, l2_banks),
                                 noc_bytes));
}

Resources
synthesizeL2(int capacity_kib, int banks)
{
    Resources r;
    r.lut = 3200.0 * banks + 2000.0;  // per-bank control + MSHRs
    r.ff = 1.2 * r.lut;
    r.bram = std::ceil(capacity_kib / 4.0) + 4.0 * banks;
    return r * noise(hashCombine(capacity_kib, banks));
}

Resources
synthesizeDramController(int channels)
{
    Resources r;
    r.lut = 11000.0 * channels;
    r.ff = 12000.0 * channels;
    r.bram = 8.0 * channels;
    return r;
}

Resources
synthesizeUncore(const adg::SystemParams &sys)
{
    Resources r = synthesizeNoc(sys.numTiles, sys.l2Banks, sys.nocBytes);
    r += synthesizeL2(sys.l2CapacityKiB, sys.l2Banks);
    r += synthesizeDramController(sys.dramChannels);
    r += { 3000.0, 3000.0, 2.0, 0.0 };  // peripherals (JTAG etc.)
    return r;
}

} // namespace overgen::model
