#include "model/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace overgen::model {

Mlp::Mlp(int input_dim, std::vector<int> hidden, int output_dim,
         uint64_t seed)
    : rng(seed)
{
    OG_ASSERT(input_dim > 0 && output_dim > 0, "bad MLP shape");
    std::vector<int> dims;
    dims.push_back(input_dim);
    for (int h : hidden)
        dims.push_back(h);
    dims.push_back(output_dim);
    for (size_t i = 0; i + 1 < dims.size(); ++i) {
        Layer layer;
        layer.in = dims[i];
        layer.out = dims[i + 1];
        layer.weight.resize(static_cast<size_t>(layer.in) * layer.out);
        layer.bias.assign(layer.out, 0.0);
        layer.weightVel.assign(layer.weight.size(), 0.0);
        layer.biasVel.assign(layer.out, 0.0);
        // He initialization for ReLU layers.
        double scale = std::sqrt(2.0 / layer.in);
        for (double &w : layer.weight)
            w = rng.nextGaussian() * scale;
        layers.push_back(std::move(layer));
    }
}

int
Mlp::parameterCount() const
{
    int count = 0;
    for (const Layer &layer : layers)
        count += static_cast<int>(layer.weight.size() +
                                  layer.bias.size());
    return count;
}

void
Mlp::standardize(std::vector<double> &features) const
{
    for (size_t i = 0; i < features.size(); ++i)
        features[i] = (features[i] - featMean[i]) / featStd[i];
}

std::vector<double>
Mlp::forward(std::span<const double> input,
             std::vector<std::vector<double>> *activations) const
{
    std::vector<double> current(input.begin(), input.end());
    if (activations)
        activations->push_back(current);
    for (size_t l = 0; l < layers.size(); ++l) {
        const Layer &layer = layers[l];
        std::vector<double> next(layer.out, 0.0);
        for (int o = 0; o < layer.out; ++o) {
            double sum = layer.bias[o];
            const double *row =
                &layer.weight[static_cast<size_t>(o) * layer.in];
            for (int i = 0; i < layer.in; ++i)
                sum += row[i] * current[i];
            bool last = (l + 1 == layers.size());
            next[o] = last ? sum : std::max(sum, 0.0);
        }
        current = std::move(next);
        if (activations)
            activations->push_back(current);
    }
    return current;
}

double
Mlp::train(const std::vector<std::vector<double>> &features,
           const std::vector<std::vector<double>> &targets,
           const MlpTrainConfig &config)
{
    OG_ASSERT(features.size() == targets.size(), "feature/target size");
    OG_ASSERT(!features.empty(), "empty training set");
    size_t n = features.size();
    size_t input_dim = features[0].size();
    OG_ASSERT(input_dim == static_cast<size_t>(layers.front().in),
              "feature dim mismatch");

    // Standardization statistics over the full set.
    featMean.assign(input_dim, 0.0);
    featStd.assign(input_dim, 0.0);
    for (const auto &f : features) {
        for (size_t i = 0; i < input_dim; ++i)
            featMean[i] += f[i];
    }
    for (size_t i = 0; i < input_dim; ++i)
        featMean[i] /= static_cast<double>(n);
    for (const auto &f : features) {
        for (size_t i = 0; i < input_dim; ++i) {
            double d = f[i] - featMean[i];
            featStd[i] += d * d;
        }
    }
    for (size_t i = 0; i < input_dim; ++i) {
        featStd[i] = std::sqrt(featStd[i] / static_cast<double>(n));
        if (featStd[i] < 1e-9)
            featStd[i] = 1.0;
    }

    // Target statistics in log1p space (resource counts span orders of
    // magnitude; standardized log targets keep gradients balanced).
    size_t output_dim = targets[0].size();
    targetMean.assign(output_dim, 0.0);
    targetStd.assign(output_dim, 0.0);
    for (const auto &t : targets) {
        for (size_t o = 0; o < output_dim; ++o)
            targetMean[o] += std::log1p(std::max(t[o], 0.0));
    }
    for (size_t o = 0; o < output_dim; ++o)
        targetMean[o] /= static_cast<double>(n);
    for (const auto &t : targets) {
        for (size_t o = 0; o < output_dim; ++o) {
            double d = std::log1p(std::max(t[o], 0.0)) - targetMean[o];
            targetStd[o] += d * d;
        }
    }
    for (size_t o = 0; o < output_dim; ++o) {
        targetStd[o] =
            std::sqrt(targetStd[o] / static_cast<double>(n));
        if (targetStd[o] < 1e-9)
            targetStd[o] = 1.0;
    }

    // Shuffle and split train/validation.
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    for (size_t i = n; i > 1; --i)
        std::swap(order[i - 1], order[rng.nextBelow(i)]);
    size_t val_count = static_cast<size_t>(
        static_cast<double>(n) * config.validationFraction);
    val_count = std::min(val_count, n - 1);
    size_t train_count = n - val_count;

    auto prepare = [&](size_t idx, std::vector<double> &x,
                       std::vector<double> &y) {
        x = features[order[idx]];
        standardize(x);
        y = targets[order[idx]];
        for (size_t o = 0; o < y.size(); ++o) {
            y[o] = (std::log1p(std::max(y[o], 0.0)) - targetMean[o]) /
                   targetStd[o];
        }
    };

    std::vector<double> x, y;
    for (int epoch = 0; epoch < config.epochs; ++epoch) {
        // Decaying learning rate.
        double lr = config.learningRate /
                    (1.0 + 0.02 * static_cast<double>(epoch));
        for (size_t idx = 0; idx < train_count; ++idx) {
            prepare(idx, x, y);
            std::vector<std::vector<double>> acts;
            std::vector<double> pred = forward(x, &acts);

            // Backward pass: MSE gradient, clipped for stability.
            std::vector<double> grad(pred.size());
            for (size_t o = 0; o < pred.size(); ++o) {
                grad[o] = 2.0 * (pred[o] - y[o]) /
                          static_cast<double>(pred.size());
                grad[o] = std::clamp(grad[o], -4.0, 4.0);
            }

            for (int l = static_cast<int>(layers.size()) - 1; l >= 0;
                 --l) {
                Layer &layer = layers[l];
                const std::vector<double> &in_act = acts[l];
                const std::vector<double> &out_act = acts[l + 1];
                std::vector<double> next_grad(layer.in, 0.0);
                bool last = (l + 1 == static_cast<int>(layers.size()));
                for (int o = 0; o < layer.out; ++o) {
                    double g = grad[o];
                    if (!last && out_act[o] <= 0.0)
                        g = 0.0;  // ReLU gate
                    double *row =
                        &layer.weight[static_cast<size_t>(o) * layer.in];
                    double *vel = &layer.weightVel[
                        static_cast<size_t>(o) * layer.in];
                    for (int i = 0; i < layer.in; ++i) {
                        next_grad[i] += g * row[i];
                        double dw = g * in_act[i];
                        vel[i] = config.momentum * vel[i] - lr * dw;
                        row[i] += vel[i];
                    }
                    layer.biasVel[o] =
                        config.momentum * layer.biasVel[o] - lr * g;
                    layer.bias[o] += layer.biasVel[o];
                }
                grad = std::move(next_grad);
            }
        }
    }

    // Validation: mean relative error in resource space.
    double rel_sum = 0.0;
    int rel_count = 0;
    for (size_t idx = train_count; idx < n; ++idx) {
        std::vector<double> raw = features[order[idx]];
        std::vector<double> pred = predict(raw);
        const std::vector<double> &truth = targets[order[idx]];
        for (size_t o = 0; o < pred.size(); ++o) {
            rel_sum += std::abs(pred[o] - truth[o]) / (truth[o] + 1.0);
            ++rel_count;
        }
    }
    valError = rel_count > 0 ? rel_sum / rel_count : 0.0;
    return valError;
}

std::vector<double>
Mlp::predict(std::span<const double> features) const
{
    OG_ASSERT(!featMean.empty(), "predict before train");
    std::vector<double> x(features.begin(), features.end());
    standardize(x);
    std::vector<double> pred = forward(x, nullptr);
    for (size_t o = 0; o < pred.size(); ++o) {
        double log_val = pred[o] * targetStd[o] + targetMean[o];
        pred[o] = std::max(0.0, std::expm1(log_val));
    }
    return pred;
}

} // namespace overgen::model
