#ifndef OVERGEN_MODEL_ORACLE_H
#define OVERGEN_MODEL_ORACLE_H

/**
 * @file
 * Synthesis oracle: the stand-in for Vivado out-of-context synthesis
 * (see DESIGN.md "Substitutions"). Produces per-module LUT/FF/BRAM/DSP
 * ground truth from analytic cost functions with deterministic,
 * parameter-keyed pseudo-noise — the data the ML resource model is
 * trained on, exactly as the paper trains on Vivado runs (Table I).
 */

#include "adg/adg.h"
#include "model/resources.h"

namespace overgen::model {

/**
 * "Synthesize" one ADG node out-of-context. @p radix is the number of
 * incident edges (switch/port cost grows with it).
 */
Resources synthesizeNode(const adg::Node &node, int radix);

/** Rocket-class control core (exhaustively characterized). */
Resources synthesizeControlCore();

/**
 * Crossbar NoC connecting @p num_tiles accelerator endpoints to
 * @p l2_banks cache banks at @p noc_bytes per cycle per link. The
 * crossbar LUT cost is quadratic in endpoints — the paper observes the
 * NoC as one of the biggest LUT components (Q4).
 */
Resources synthesizeNoc(int num_tiles, int l2_banks, int noc_bytes);

/** Banked, inclusive, directory-based L2. */
Resources synthesizeL2(int capacity_kib, int banks);

/** DRAM channel controller (fixed-location hard IP wrapper). */
Resources synthesizeDramController(int channels);

/** System-wide non-tile resources (NoC + L2 + DRAM + peripherals). */
Resources synthesizeUncore(const adg::SystemParams &sys);

} // namespace overgen::model

#endif // OVERGEN_MODEL_ORACLE_H
