#ifndef OVERGEN_MODEL_RESOURCES_H
#define OVERGEN_MODEL_RESOURCES_H

/**
 * @file
 * FPGA resource vectors (LUT/FF/BRAM/DSP) and the evaluation device
 * budget (Xilinx XCVU9P on the VCU118 board, paper §VII).
 */

#include <algorithm>
#include <string>

namespace overgen::model {

/** A resource vector over the four FPGA resource classes. */
struct Resources
{
    double lut = 0.0;
    double ff = 0.0;
    double bram = 0.0;  //!< BRAM36 blocks
    double dsp = 0.0;

    Resources &
    operator+=(const Resources &other)
    {
        lut += other.lut;
        ff += other.ff;
        bram += other.bram;
        dsp += other.dsp;
        return *this;
    }

    friend Resources
    operator+(Resources a, const Resources &b)
    {
        a += b;
        return a;
    }

    friend Resources
    operator*(Resources a, double s)
    {
        a.lut *= s;
        a.ff *= s;
        a.bram *= s;
        a.dsp *= s;
        return a;
    }

    friend Resources
    operator*(double s, Resources a)
    {
        return a * s;
    }

    bool
    operator==(const Resources &other) const = default;
};

/** An FPGA device's available resources. */
struct FpgaDevice
{
    std::string name;
    Resources total;

    /** @return the XCVU9P (VCU118) budget. */
    static FpgaDevice
    xcvu9p()
    {
        return { "xcvu9p", { 1182240.0, 2364480.0, 2160.0, 6840.0 } };
    }

    /**
     * @return the utilization fraction of the scarcest resource —
     * > 1 means the design does not fit.
     */
    double
    worstUtilization(const Resources &used) const
    {
        double w = used.lut / total.lut;
        w = std::max(w, used.ff / total.ff);
        w = std::max(w, used.bram / total.bram);
        w = std::max(w, used.dsp / total.dsp);
        return w;
    }

    /** @return whether @p used fits within @p budget_fraction. */
    bool
    fits(const Resources &used, double budget_fraction = 1.0) const
    {
        return worstUtilization(used) <= budget_fraction;
    }
};

} // namespace overgen::model

#endif // OVERGEN_MODEL_RESOURCES_H
