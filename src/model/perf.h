#ifndef OVERGEN_MODEL_PERF_H
#define OVERGEN_MODEL_PERF_H

/**
 * @file
 * Bottleneck-based performance model (paper §V-C, Eq. 1-2): estimated
 * IPC of an mDFG on a design point is its instruction bandwidth times
 * the tile count, scaled by the most-bottlenecked
 * production/consumption ratio over the memory hierarchy (scratchpad,
 * L2, DRAM) and the fabric port interfaces. Stream reuse factors from
 * the compiler's reuse analysis reduce consumption at each level.
 *
 * The model is offered in two forms that compute bit-identical
 * results (see DESIGN.md "Evaluation cache and model split"):
 *  - estimateIpc(): the one-shot reference path;
 *  - precomputeTilePerf() + combineSystemPerf(): the factored path
 *    the DSE's nested system grid uses — everything that depends only
 *    on (mDFG, backing, tile) is summarized once, and each system
 *    point pays only a handful of multiplies and compares.
 */

#include <string>
#include <vector>

#include "adg/adg.h"
#include "dfg/mdfg.h"

namespace overgen::model {

/** Which hardware backs a memory stream after placement. */
enum class Backing : uint8_t {
    Dma,         //!< shared L2 / DRAM via the DMA engine
    Scratchpad,  //!< private on-tile scratchpad
    Recurrence,  //!< recurrence engine (no memory traffic in steady state)
    Generate,    //!< value generation (no memory traffic)
    Register,    //!< scalar collection (negligible)
};

/**
 * Flat backing table indexed by dfg::NodeId (hot-path replacement for
 * the former std::map: the DSE queries it per stream per candidate).
 * Entries exist for every node of the mDFG; only stream-node slots
 * are meaningful, the rest stay at the Dma default. An empty vector
 * means "no placement information" — estimateIpc derives the backing
 * itself.
 */
using BackingVec = std::vector<Backing>;

/** @return the backing of @p id; Dma when the table has no entry. */
inline Backing
backingOf(const BackingVec &backing, dfg::NodeId id)
{
    return id >= 0 && static_cast<size_t>(id) < backing.size()
               ? backing[static_cast<size_t>(id)]
               : Backing::Dma;
}

/** Technology constants of the memory system (bytes/cycle). */
struct PerfConfig
{
    double l2BankBandwidthBytes = 32.0;
    /** At the overlay clock (DDR4 ~18 GB/s at ~93 MHz). */
    double dramChannelBandwidthBytes = 192.0;
};

/** One mDFG plus its stream placements. */
struct PerfInput
{
    const dfg::Mdfg *mdfg = nullptr;
    /** Backing per node (see BackingVec); empty derives the backing
     * from the stream sources and the arrays' preferred placement. */
    BackingVec backing;
};

/** IPC estimate with the limiting factor decomposition. */
struct PerfBreakdown
{
    double ipc = 0.0;
    /**
     * Source-iteration throughput: vectorization x tiles x bottleneck.
     * IPC rewards memory ops as work (Eq. 1), so when choosing among
     * variants of the *same* kernel the DSE compares work rates.
     */
    double workRate = 0.0;
    double instBandwidth = 0.0;
    double fabricFactor = 1.0;  //!< in/out port interface
    double spadFactor = 1.0;
    double l2Factor = 1.0;
    double dramFactor = 1.0;
    std::string bottleneck;     //!< name of the limiting level
};

/**
 * The design-dependent half of the performance model: every quantity
 * of estimateIpc() that depends only on (mDFG, backing, tile) and not
 * on the system parameters. Computed once per (candidate, kernel) by
 * precomputeTilePerf(); the nested system DSE then evaluates each
 * grid point with combineSystemPerf() without re-walking the ADG or
 * the mDFG's streams.
 */
struct TilePerfSummary
{
    double instBandwidth = 0.0;
    int vectorization = 1;
    /** Port-interface and scratchpad factors are system-independent
     * and carried over verbatim. */
    double fabricFactor = 1.0;
    double spadFactor = 1.0;
    /** Per-tile bytes/cycle demanded of the L2 (DMA-backed streams). */
    double l2Demand = 0.0;
    /** Aggregate DMA-engine bandwidth of the tile (bytes/cycle). */
    double dmaBytes = 0.0;

    /**
     * One DRAM-demand term per memory-backed stream, in the exact
     * stream order estimateIpc() accumulates them — combine replays
     * the same additions so the factored model is bit-identical to
     * the reference path.
     */
    struct DramTerm
    {
        /** Bytes/cycle after captured reuse and efficiency derating. */
        double demand = 0.0;
        /** Stream footprint; only meaningful when l2Filtered. */
        double footprintBytes = 0.0;
        /** General reuse factor, clamped to >= 1. */
        double generalReuse = 1.0;
        /** true: DMA-backed — the L2 filters the traffic when the
         * footprint fits its per-tile share (system-dependent);
         * false: scratchpad fill/drain — always divided by the
         * general reuse. */
        bool l2Filtered = false;
    };
    std::vector<DramTerm> dramTerms;
};

/** @return the default backing of each memory stream of @p mdfg given
 * the engines available in @p tile (spad capacity honored greedily in
 * array-size order; recurrence requires a recurrence engine). */
BackingVec deriveBacking(const dfg::Mdfg &mdfg, const adg::Adg &tile);

/** Estimate the IPC of one mDFG on the design point (Eq. 1). */
PerfBreakdown estimateIpc(const PerfInput &input, const adg::Adg &tile,
                          const adg::SystemParams &sys,
                          const PerfConfig &config = {});

/**
 * Precompute the system-independent half of estimateIpc() for one
 * mDFG on one tile. @p backing may be empty (derived as in
 * estimateIpc). combineSystemPerf(precomputeTilePerf(m, b, t), sys,
 * cfg) == estimateIpc({&m, b}, t, sys, cfg) to bit precision.
 */
TilePerfSummary precomputeTilePerf(const dfg::Mdfg &mdfg,
                                   const BackingVec &backing,
                                   const adg::Adg &tile);

/** Evaluate one system point against a precomputed tile summary. */
PerfBreakdown combineSystemPerf(const TilePerfSummary &summary,
                                const adg::SystemParams &sys,
                                const PerfConfig &config = {});

/**
 * Overall DSE performance objective: weighted geometric mean of the
 * best per-workload IPC estimates (paper §III-A).
 */
double performanceObjective(const std::vector<PerfBreakdown> &per_workload,
                            const std::vector<double> &weights);

/**
 * Model-side ramp cost constants for the phase-aware DSE objective
 * (DseObjective::Phase). Mirrors the simulator's startup accounting —
 * SimConfig::configCyclesPerStream per stream plus the dispatch
 * pipeline — with a pipeline-fill allowance for the ramp the
 * hysteresis segmentation observes after startup.
 */
struct PhaseWeights
{
    /** Cycles to configure one stream engine (matches the simulator's
     * SimConfig::configCyclesPerStream default). */
    double configCyclesPerStream = 1.0;
    /** Dispatch pipeline depth (dispatchLatency + dispatchBusStages
     * simulator defaults). */
    double dispatchOverhead = 4.0;
    /** Flat allowance for pipelines and the memory hierarchy filling
     * before steady state; the knob that strengthens the short-kernel
     * ramp penalty. */
    double pipelineFill = 64.0;
};

/**
 * Model-estimated ramp length of @p mdfg on any design point: stream
 * configuration + dispatch + pipeline fill. A pure function of the
 * mDFG's stream count and @p weights — candidate-independent, so the
 * phase objective's steady fraction S/(S+R) differs across candidates
 * only through their steady-state work rate.
 */
double estimateRampCycles(const dfg::Mdfg &mdfg,
                          const PhaseWeights &weights = {});

} // namespace overgen::model

#endif // OVERGEN_MODEL_PERF_H
