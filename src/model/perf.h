#ifndef OVERGEN_MODEL_PERF_H
#define OVERGEN_MODEL_PERF_H

/**
 * @file
 * Bottleneck-based performance model (paper §V-C, Eq. 1-2): estimated
 * IPC of an mDFG on a design point is its instruction bandwidth times
 * the tile count, scaled by the most-bottlenecked
 * production/consumption ratio over the memory hierarchy (scratchpad,
 * L2, DRAM) and the fabric port interfaces. Stream reuse factors from
 * the compiler's reuse analysis reduce consumption at each level.
 */

#include <map>
#include <string>
#include <vector>

#include "adg/adg.h"
#include "dfg/mdfg.h"

namespace overgen::model {

/** Which hardware backs a memory stream after placement. */
enum class Backing : uint8_t {
    Dma,         //!< shared L2 / DRAM via the DMA engine
    Scratchpad,  //!< private on-tile scratchpad
    Recurrence,  //!< recurrence engine (no memory traffic in steady state)
    Generate,    //!< value generation (no memory traffic)
    Register,    //!< scalar collection (negligible)
};

/** Technology constants of the memory system (bytes/cycle). */
struct PerfConfig
{
    double l2BankBandwidthBytes = 32.0;
    /** At the overlay clock (DDR4 ~18 GB/s at ~93 MHz). */
    double dramChannelBandwidthBytes = 192.0;
};

/** One mDFG plus its stream placements. */
struct PerfInput
{
    const dfg::Mdfg *mdfg = nullptr;
    /** Backing per memory-stream node; streams absent from the map
     * derive their backing from the stream source and the array's
     * preferred placement. */
    std::map<dfg::NodeId, Backing> backing;
};

/** IPC estimate with the limiting factor decomposition. */
struct PerfBreakdown
{
    double ipc = 0.0;
    /**
     * Source-iteration throughput: vectorization x tiles x bottleneck.
     * IPC rewards memory ops as work (Eq. 1), so when choosing among
     * variants of the *same* kernel the DSE compares work rates.
     */
    double workRate = 0.0;
    double instBandwidth = 0.0;
    double fabricFactor = 1.0;  //!< in/out port interface
    double spadFactor = 1.0;
    double l2Factor = 1.0;
    double dramFactor = 1.0;
    std::string bottleneck;     //!< name of the limiting level
};

/** @return the default backing of each memory stream of @p mdfg given
 * the engines available in @p tile (spad capacity honored greedily in
 * array-size order; recurrence requires a recurrence engine). */
std::map<dfg::NodeId, Backing> deriveBacking(const dfg::Mdfg &mdfg,
                                             const adg::Adg &tile);

/** Estimate the IPC of one mDFG on the design point (Eq. 1). */
PerfBreakdown estimateIpc(const PerfInput &input, const adg::Adg &tile,
                          const adg::SystemParams &sys,
                          const PerfConfig &config = {});

/**
 * Overall DSE performance objective: weighted geometric mean of the
 * best per-workload IPC estimates (paper §III-A).
 */
double performanceObjective(const std::vector<PerfBreakdown> &per_workload,
                            const std::vector<double> &weights);

} // namespace overgen::model

#endif // OVERGEN_MODEL_PERF_H
