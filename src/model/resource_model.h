#ifndef OVERGEN_MODEL_RESOURCE_MODEL_H
#define OVERGEN_MODEL_RESOURCE_MODEL_H

/**
 * @file
 * ML-based FPGA resource model (paper §V-D): per-component MLPs trained
 * on (oracle) synthesis samples for the many-parameter units — PEs,
 * switches, input/output ports — and exhaustive characterization for
 * the few-parameter units (engines, core, NoC, L2). Used by the DSE to
 * price every candidate design without running synthesis.
 */

#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "adg/adg.h"
#include "model/mlp.h"
#include "model/resources.h"

namespace overgen::model {

/** Training-set sizes per component (paper Table I, scaled down). */
struct ResourceModelConfig
{
    int peSamples = 3000;
    int switchSamples = 1500;
    int inPortSamples = 1000;
    int outPortSamples = 1000;
    MlpTrainConfig train;
    uint64_t seed = 1;
    /**
     * Out-of-context training data has no cross-module optimization, so
     * the model is pessimistic (paper: "projected design point is
     * larger than the actual post-PnR result").
     */
    double pessimism = 1.06;
};

/** The trained component-level resource model. */
class FpgaResourceModel
{
  public:
    /** Sample the component design spaces and train the MLPs. */
    static FpgaResourceModel train(const ResourceModelConfig &config = {});

    /**
     * A shared, lazily-trained default instance (training takes a
     * moment; benches and the DSE reuse it).
     */
    static const FpgaResourceModel &defaultModel();

    /** Predicted resources of one ADG node at the given radix. */
    Resources nodeResources(const adg::Node &node, int radix) const;

    /** Predicted resources of one accelerator tile (no control core). */
    Resources tileResources(const adg::Adg &adg) const;

    /**
     * Predicted whole-system resources: tiles x (accelerator + control
     * core) + NoC + L2 + DRAM controller.
     */
    Resources systemResources(const adg::SysAdg &design) const;

    /** Per-category tile breakdown for Fig. 16 (pe/n-w/vp/spad/dma). */
    struct TileBreakdown
    {
        Resources pe;
        Resources network;  //!< switches
        Resources ports;    //!< vector ports
        Resources spad;
        Resources dma;      //!< DMA + other stream engines
    };
    TileBreakdown tileBreakdown(const adg::Adg &adg) const;

    /** Validation relative errors of the trained MLPs. */
    double peError() const;
    double switchError() const;
    double inPortError() const;
    double outPortError() const;

  private:
    FpgaResourceModel() = default;

    Resources predict(const Mlp &mlp, int kind_key,
                      const std::vector<double> &features) const;

    /**
     * Thread-safe memo of MLP predictions keyed by (node kind,
     * feature vector). A trained MLP is a pure function, so the
     * memoized value is bit-identical to a fresh forward pass — this
     * only removes redundant arithmetic, never changes a price. The
     * DSE re-prices near-identical tiles thousands of times, so the
     * hit rate is high. Behind a unique_ptr because std::mutex is not
     * movable and the model is returned by value from train().
     */
    struct PredictionMemo
    {
        std::mutex mutex;
        std::map<std::pair<int, std::vector<double>>, Resources> cache;
    };
    mutable std::unique_ptr<PredictionMemo> memo =
        std::make_unique<PredictionMemo>();

    std::unique_ptr<Mlp> peMlp;
    std::unique_ptr<Mlp> switchMlp;
    std::unique_ptr<Mlp> inPortMlp;
    std::unique_ptr<Mlp> outPortMlp;
    double pessimism = 1.0;
};

/** Feature extraction (exposed for tests). */
std::vector<double> peFeatures(const adg::PeSpec &pe);
std::vector<double> switchFeatures(const adg::SwitchSpec &sw, int radix);
std::vector<double> portFeatures(const adg::PortSpec &port);

} // namespace overgen::model

#endif // OVERGEN_MODEL_RESOURCE_MODEL_H
