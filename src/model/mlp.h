#ifndef OVERGEN_MODEL_MLP_H
#define OVERGEN_MODEL_MLP_H

/**
 * @file
 * A small multi-layer perceptron with SGD + momentum training, used by
 * the component-level FPGA resource model (paper §V-D: a 3-layer MLP
 * trained on out-of-context synthesis results). Self-contained: feature
 * standardization and log-scaled targets are handled internally.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace overgen::model {

/** Training hyperparameters. */
struct MlpTrainConfig
{
    int epochs = 160;
    double learningRate = 0.004;
    double momentum = 0.9;
    int batchSize = 16;
    /** Fraction of data held out for validation (paper: 80/10/10). */
    double validationFraction = 0.1;
};

/** A dense feed-forward network with ReLU hidden activations. */
class Mlp
{
  public:
    /**
     * @param input_dim   feature dimensionality
     * @param hidden      hidden-layer widths (the paper's 3-layer MLP
     *                    corresponds to two hidden layers)
     * @param output_dim  target dimensionality
     * @param seed        deterministic weight initialization
     */
    Mlp(int input_dim, std::vector<int> hidden, int output_dim,
        uint64_t seed = 1);

    /**
     * Fit on @p features / @p targets. Targets are trained in
     * log1p-space internally (resource counts span orders of
     * magnitude). @return final validation RMSE in target space
     * (relative, see validationRelativeError()).
     */
    double train(const std::vector<std::vector<double>> &features,
                 const std::vector<std::vector<double>> &targets,
                 const MlpTrainConfig &config = {});

    /** Predict targets (inverse-transformed to resource space). */
    std::vector<double> predict(std::span<const double> features) const;

    /** Mean relative |pred-true|/(true+1) over the validation split. */
    double validationRelativeError() const { return valError; }

    /** @return number of trainable parameters. */
    int parameterCount() const;

  private:
    struct Layer
    {
        int in = 0;
        int out = 0;
        std::vector<double> weight;    //!< out x in, row-major
        std::vector<double> bias;      //!< out
        std::vector<double> weightVel; //!< momentum buffers
        std::vector<double> biasVel;
    };

    std::vector<double> forward(std::span<const double> input,
                                std::vector<std::vector<double>>
                                    *activations) const;
    void standardize(std::vector<double> &features) const;

    std::vector<Layer> layers;
    std::vector<double> featMean;
    std::vector<double> featStd;
    std::vector<double> targetMean;  //!< in log1p space
    std::vector<double> targetStd;
    double valError = 0.0;
    Rng rng;
};

} // namespace overgen::model

#endif // OVERGEN_MODEL_MLP_H
