#include "model/perf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stats.h"

namespace overgen::model {

namespace {

using dfg::Mdfg;
using dfg::NodeKind;
using dfg::StreamSource;

/** Aggregate hardware bandwidths of one tile's memory system. */
struct TileBandwidths
{
    double inPortBytes = 0.0;
    double outPortBytes = 0.0;
    double spadReadBytes = 0.0;
    double spadWriteBytes = 0.0;
    double spadCapacityBytes = 0.0;
    double dmaBytes = 0.0;
    bool hasRecurrence = false;
    bool hasSpad = false;
};

TileBandwidths
tileBandwidths(const adg::Adg &tile)
{
    TileBandwidths bw;
    for (adg::NodeId id : tile.nodeIds()) {
        const adg::Node &node = tile.node(id);
        switch (node.kind) {
          case adg::NodeKind::InPort:
            bw.inPortBytes += node.port().widthBytes;
            break;
          case adg::NodeKind::OutPort:
            bw.outPortBytes += node.port().widthBytes;
            break;
          case adg::NodeKind::Scratchpad:
            bw.spadReadBytes += node.spad().readBandwidthBytes;
            bw.spadWriteBytes += node.spad().writeBandwidthBytes;
            bw.spadCapacityBytes += node.spad().capacityKiB * 1024.0;
            bw.hasSpad = true;
            break;
          case adg::NodeKind::Dma:
            bw.dmaBytes += node.dma().bandwidthBytes;
            break;
          case adg::NodeKind::Recurrence:
            bw.hasRecurrence = true;
            break;
          default:
            break;
        }
    }
    return bw;
}

/** Ratio clamped to [epsilon, 1]: a level can only slow execution. */
double
bottleneck(double production, double consumption)
{
    if (consumption <= 1e-12)
        return 1.0;
    return std::clamp(production / consumption, 1e-6, 1.0);
}

/** Shared limit selection + naming of estimateIpc and combine. */
void
finishBreakdown(PerfBreakdown &out, double tiles, double inst_bandwidth,
                int vectorization)
{
    double limit = std::min({ out.fabricFactor, out.spadFactor,
                              out.l2Factor, out.dramFactor });
    if (limit == out.dramFactor)
        out.bottleneck = "dram";
    if (limit == out.l2Factor)
        out.bottleneck = "l2";
    if (limit == out.spadFactor)
        out.bottleneck = "spad";
    if (limit == out.fabricFactor)
        out.bottleneck = "fabric";
    if (limit >= 1.0 - 1e-12)
        out.bottleneck = "compute";

    out.ipc = inst_bandwidth * tiles * limit;
    out.workRate = static_cast<double>(vectorization) * tiles * limit;
}

} // namespace

BackingVec
deriveBacking(const Mdfg &mdfg, const adg::Adg &tile)
{
    TileBandwidths bw = tileBandwidths(tile);
    BackingVec backing(static_cast<size_t>(mdfg.numNodes()),
                       Backing::Dma);

    // Scratchpad allocation: prefer arrays the compiler marked, largest
    // general reuse first, while capacity lasts.
    std::vector<bool> array_in_spad(
        static_cast<size_t>(mdfg.numNodes()), false);
    double remaining = bw.spadCapacityBytes;
    std::vector<dfg::NodeId> arrays =
        mdfg.nodeIdsOfKind(NodeKind::Array);
    std::sort(arrays.begin(), arrays.end(),
              [&](dfg::NodeId a, dfg::NodeId b) {
                  return mdfg.node(a).array.sizeBytes <
                         mdfg.node(b).array.sizeBytes;
              });
    for (dfg::NodeId id : arrays) {
        const dfg::ArrayNode &arr = mdfg.node(id).array;
        bool wants_spad =
            arr.preferred == dfg::ArrayPlacement::Scratchpad;
        bool fits = static_cast<double>(arr.sizeBytes) <= remaining;
        bool supported = bw.hasSpad;
        if (arr.indirectIndexed) {
            supported = false;
            for (adg::NodeId sid :
                 tile.nodeIdsOfKind(adg::NodeKind::Scratchpad)) {
                supported |= tile.node(sid).spad().indirect;
            }
        }
        if (wants_spad && fits && supported) {
            array_in_spad[id] = true;
            remaining -= static_cast<double>(arr.sizeBytes);
        }
    }

    auto classify = [&](dfg::NodeId id) {
        const dfg::StreamNode &stream = mdfg.node(id).stream;
        switch (stream.source) {
          case StreamSource::Generated:
            return Backing::Generate;
          case StreamSource::Register:
            return Backing::Register;
          case StreamSource::Recurrence:
            return bw.hasRecurrence ? Backing::Recurrence : Backing::Dma;
          case StreamSource::Memory:
            break;
        }
        if (stream.array != dfg::invalidNode &&
            array_in_spad[stream.array]) {
            return Backing::Scratchpad;
        }
        return Backing::Dma;
    };
    for (dfg::NodeId id : mdfg.nodeIdsOfKind(NodeKind::InputStream))
        backing[id] = classify(id);
    for (dfg::NodeId id : mdfg.nodeIdsOfKind(NodeKind::OutputStream))
        backing[id] = classify(id);
    return backing;
}

PerfBreakdown
estimateIpc(const PerfInput &input, const adg::Adg &tile,
            const adg::SystemParams &sys, const PerfConfig &config)
{
    OG_ASSERT(input.mdfg != nullptr, "perf input without mDFG");
    const Mdfg &mdfg = *input.mdfg;
    TileBandwidths bw = tileBandwidths(tile);

    BackingVec backing = input.backing;
    if (backing.empty())
        backing = deriveBacking(mdfg, tile);

    PerfBreakdown out;
    out.instBandwidth = mdfg.instructionBandwidth();

    // Consumption accumulators (bytes/cycle demanded per tile).
    double in_port_demand = 0.0, out_port_demand = 0.0;
    double spad_read = 0.0, spad_write = 0.0;
    double l2_demand = 0.0;
    double dram_demand = 0.0;

    double l2_share_bytes =
        sys.l2CapacityKiB * 1024.0 /
        std::max(1, sys.numTiles);

    auto add_stream = [&](dfg::NodeId id, bool is_input) {
        const dfg::StreamNode &stream = mdfg.node(id).stream;
        double bytes = stream.bytesPerFiring();
        if (is_input)
            in_port_demand += bytes;
        else
            out_port_demand += bytes;

        Backing b = backingOf(backing, id);
        double captured = std::max(stream.reuse.capturedFactor(), 1.0);
        double demand =
            bytes / captured / std::max(stream.bandwidthEfficiency,
                                        1e-3);
        switch (b) {
          case Backing::Scratchpad: {
            if (is_input)
                spad_read += demand;
            else
                spad_write += demand;
            // Fill/drain traffic reaches DRAM once per general reuse.
            double general = std::max(stream.reuse.generalReuse(), 1.0);
            dram_demand += demand / general;
            break;
          }
          case Backing::Dma: {
            l2_demand += demand;
            // The L2 filters traffic whose footprint fits its share.
            double l2_reuse = 1.0;
            if (stream.reuse.footprintBytes <= l2_share_bytes)
                l2_reuse = std::max(stream.reuse.generalReuse(), 1.0);
            dram_demand += demand / l2_reuse;
            break;
          }
          case Backing::Recurrence:
          case Backing::Generate:
          case Backing::Register:
            break;  // no memory-system traffic in steady state
        }
    };

    for (dfg::NodeId id : mdfg.nodeIdsOfKind(NodeKind::InputStream))
        add_stream(id, true);
    for (dfg::NodeId id : mdfg.nodeIdsOfKind(NodeKind::OutputStream))
        add_stream(id, false);

    // Fabric interface: ports must sustain every firing.
    out.fabricFactor =
        std::min(bottleneck(bw.inPortBytes, in_port_demand),
                 bottleneck(bw.outPortBytes, out_port_demand));

    // L1: scratchpad, private per tile (paper: # shared tiles = 1);
    // read and write ports are provisioned separately.
    out.spadFactor =
        std::min(bottleneck(bw.spadReadBytes, spad_read),
                 bottleneck(bw.spadWriteBytes, spad_write));

    // L2: banks shared by all tiles over the NoC; each tile's link and
    // DMA engine also cap its slice.
    double tiles = static_cast<double>(sys.numTiles);
    double l2_production =
        config.l2BankBandwidthBytes * sys.l2Banks;
    double tile_link = std::min(bw.dmaBytes,
                                static_cast<double>(sys.nocBytes));
    out.l2Factor =
        std::min(bottleneck(l2_production, l2_demand * tiles),
                 bottleneck(tile_link, l2_demand));

    // L3: DRAM, fixed total board bandwidth.
    double dram_production =
        config.dramChannelBandwidthBytes * sys.dramChannels;
    out.dramFactor = bottleneck(dram_production, dram_demand * tiles);

    finishBreakdown(out, tiles, out.instBandwidth,
                    mdfg.vectorization());
    return out;
}

TilePerfSummary
precomputeTilePerf(const Mdfg &mdfg, const BackingVec &backing_in,
                   const adg::Adg &tile)
{
    TileBandwidths bw = tileBandwidths(tile);

    const BackingVec *backing = &backing_in;
    BackingVec derived;
    if (backing_in.empty()) {
        derived = deriveBacking(mdfg, tile);
        backing = &derived;
    }

    TilePerfSummary s;
    s.instBandwidth = mdfg.instructionBandwidth();
    s.vectorization = mdfg.vectorization();
    s.dmaBytes = bw.dmaBytes;

    // Same accumulation order as estimateIpc (input streams, then
    // output streams): the sums and the DRAM term sequence replay
    // identically in combineSystemPerf, keeping the split bit-exact.
    double in_port_demand = 0.0, out_port_demand = 0.0;
    double spad_read = 0.0, spad_write = 0.0;

    auto add_stream = [&](dfg::NodeId id, bool is_input) {
        const dfg::StreamNode &stream = mdfg.node(id).stream;
        double bytes = stream.bytesPerFiring();
        if (is_input)
            in_port_demand += bytes;
        else
            out_port_demand += bytes;

        Backing b = backingOf(*backing, id);
        double captured = std::max(stream.reuse.capturedFactor(), 1.0);
        double demand =
            bytes / captured / std::max(stream.bandwidthEfficiency,
                                        1e-3);
        switch (b) {
          case Backing::Scratchpad: {
            if (is_input)
                spad_read += demand;
            else
                spad_write += demand;
            TilePerfSummary::DramTerm term;
            term.demand = demand;
            term.generalReuse =
                std::max(stream.reuse.generalReuse(), 1.0);
            term.l2Filtered = false;
            s.dramTerms.push_back(term);
            break;
          }
          case Backing::Dma: {
            s.l2Demand += demand;
            TilePerfSummary::DramTerm term;
            term.demand = demand;
            term.footprintBytes = stream.reuse.footprintBytes;
            term.generalReuse =
                std::max(stream.reuse.generalReuse(), 1.0);
            term.l2Filtered = true;
            s.dramTerms.push_back(term);
            break;
          }
          case Backing::Recurrence:
          case Backing::Generate:
          case Backing::Register:
            break;
        }
    };

    for (dfg::NodeId id : mdfg.nodeIdsOfKind(NodeKind::InputStream))
        add_stream(id, true);
    for (dfg::NodeId id : mdfg.nodeIdsOfKind(NodeKind::OutputStream))
        add_stream(id, false);

    s.fabricFactor =
        std::min(bottleneck(bw.inPortBytes, in_port_demand),
                 bottleneck(bw.outPortBytes, out_port_demand));
    s.spadFactor =
        std::min(bottleneck(bw.spadReadBytes, spad_read),
                 bottleneck(bw.spadWriteBytes, spad_write));
    return s;
}

PerfBreakdown
combineSystemPerf(const TilePerfSummary &summary,
                  const adg::SystemParams &sys,
                  const PerfConfig &config)
{
    PerfBreakdown out;
    out.instBandwidth = summary.instBandwidth;
    out.fabricFactor = summary.fabricFactor;
    out.spadFactor = summary.spadFactor;

    double l2_share_bytes =
        sys.l2CapacityKiB * 1024.0 /
        std::max(1, sys.numTiles);

    // Replay the DRAM-demand accumulation of estimateIpc: each term
    // divides by 1.0 (no filtering), the general reuse (scratchpad
    // fill/drain, or DMA traffic the L2 captures) — identical
    // operations in identical order.
    double dram_demand = 0.0;
    for (const TilePerfSummary::DramTerm &term : summary.dramTerms) {
        double reuse = term.generalReuse;
        if (term.l2Filtered && term.footprintBytes > l2_share_bytes)
            reuse = 1.0;
        dram_demand += term.demand / reuse;
    }

    double tiles = static_cast<double>(sys.numTiles);
    double l2_production =
        config.l2BankBandwidthBytes * sys.l2Banks;
    double tile_link = std::min(summary.dmaBytes,
                                static_cast<double>(sys.nocBytes));
    out.l2Factor =
        std::min(bottleneck(l2_production, summary.l2Demand * tiles),
                 bottleneck(tile_link, summary.l2Demand));

    double dram_production =
        config.dramChannelBandwidthBytes * sys.dramChannels;
    out.dramFactor = bottleneck(dram_production, dram_demand * tiles);

    finishBreakdown(out, tiles, summary.instBandwidth,
                    summary.vectorization);
    return out;
}

double
performanceObjective(const std::vector<PerfBreakdown> &per_workload,
                     const std::vector<double> &weights)
{
    OG_ASSERT(per_workload.size() == weights.size(), "size mismatch");
    std::vector<double> ipcs;
    ipcs.reserve(per_workload.size());
    for (const PerfBreakdown &b : per_workload)
        ipcs.push_back(std::max(b.ipc, 1e-9));
    return weightedGeometricMean(ipcs, weights);
}

double
estimateRampCycles(const dfg::Mdfg &mdfg, const PhaseWeights &weights)
{
    using dfg::NodeKind;
    size_t streams = mdfg.nodeIdsOfKind(NodeKind::InputStream).size() +
                     mdfg.nodeIdsOfKind(NodeKind::OutputStream).size();
    return static_cast<double>(streams) * weights.configCyclesPerStream +
           weights.dispatchOverhead + weights.pipelineFill;
}

} // namespace overgen::model
