#include "serve/shard.h"

namespace overgen::serve {

std::vector<Shard>
planShards(size_t jobCount, size_t shardSize)
{
    std::vector<Shard> shards;
    if (jobCount == 0)
        return shards;
    if (shardSize == 0)
        shardSize = jobCount;
    for (size_t first = 0; first < jobCount; first += shardSize) {
        Shard shard;
        shard.id = static_cast<int>(shards.size());
        shard.first = first;
        shard.count = std::min(shardSize, jobCount - first);
        shards.push_back(shard);
    }
    return shards;
}

} // namespace overgen::serve
