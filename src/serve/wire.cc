#include "serve/wire.h"

#include <cerrno>
#include <unistd.h>

#include "common/logging.h"

namespace overgen::serve {

int
JobSet::addDesign(const adg::SysAdg &design)
{
    Json json = design.toJson();
    std::string key = json.dump();
    auto it = designIds.find(key);
    if (it != designIds.end())
        return it->second;
    int id = static_cast<int>(designs.size());
    designs.push_back(std::move(json));
    designIds.emplace(std::move(key), id);
    return id;
}

uint64_t
JobSet::addJob(const std::string &workload, int designId,
               bool applyTuning, bool smallSize)
{
    OG_ASSERT(designId >= 0 &&
                  designId < static_cast<int>(designs.size()),
              "job references unknown design id ", designId);
    JobSpec job;
    job.index = jobs.size();
    job.workload = workload;
    job.designId = designId;
    job.applyTuning = applyTuning;
    job.smallSize = smallSize;
    jobs.push_back(std::move(job));
    return jobs.back().index;
}

Json
jobToJson(const JobSpec &job)
{
    Json obj = Json::makeObject();
    obj.set("index", Json(job.index));
    obj.set("workload", Json(job.workload));
    obj.set("design", Json(job.designId));
    if (job.smallSize)
        obj.set("small", Json(true));
    if (job.applyTuning)
        obj.set("tuning", Json(true));
    if (job.dramLatency > 0)
        obj.set("dram_latency", Json(job.dramLatency));
    if (job.deadlockCycles >= 0)
        obj.set("deadlock_cycles", Json(job.deadlockCycles));
    return obj;
}

JobSpec
jobFromJson(const Json &json)
{
    JobSpec job;
    job.index = static_cast<uint64_t>(json.at("index").asInt());
    job.workload = json.at("workload").asString();
    job.designId = static_cast<int>(json.at("design").asInt());
    if (json.contains("small"))
        job.smallSize = json.at("small").asBool();
    if (json.contains("tuning"))
        job.applyTuning = json.at("tuning").asBool();
    if (json.contains("dram_latency"))
        job.dramLatency =
            static_cast<int>(json.at("dram_latency").asInt());
    if (json.contains("deadlock_cycles"))
        job.deadlockCycles = json.at("deadlock_cycles").asInt();
    return job;
}

Json
resultToJson(const ResultRow &row)
{
    Json obj = Json::makeObject();
    obj.set("ok", Json(row.ok));
    obj.set("deadlocked", Json(row.deadlocked));
    if (!row.diagnostic.empty())
        obj.set("diagnostic", Json(row.diagnostic));
    obj.set("variant", Json(row.variant));
    obj.set("cycles", Json(row.cycles));
    obj.set("ipc", Json(row.ipc));
    return obj;
}

ResultRow
resultFromJson(const Json &json)
{
    ResultRow row;
    row.ok = json.at("ok").asBool();
    row.deadlocked = json.at("deadlocked").asBool();
    if (json.contains("diagnostic"))
        row.diagnostic = json.at("diagnostic").asString();
    row.variant = json.at("variant").asString();
    row.cycles = static_cast<uint64_t>(json.at("cycles").asInt());
    row.ipc = json.at("ipc").asNumber();
    return row;
}

std::string
mergedLine(const JobSpec &job, const ResultRow &row)
{
    // Object keys serialize map-sorted, and doubles print as %.17g
    // (exact round-trip through parse), so this line is a pure
    // function of the job and the deterministic simulation.
    Json obj = resultToJson(row);
    obj.set("index", Json(job.index));
    obj.set("workload", Json(job.workload));
    return obj.dump();
}

std::string
mergedJsonl(const JobSet &set, const std::vector<ResultRow> &rows)
{
    OG_ASSERT(rows.size() == set.jobs.size(),
              "result rows (", rows.size(), ") do not cover the job "
              "set (", set.jobs.size(), ")");
    std::string out;
    for (size_t i = 0; i < set.jobs.size(); ++i) {
        out += mergedLine(set.jobs[i], rows[i]);
        out += '\n';
    }
    return out;
}

bool
writeLine(int fd, const std::string &line)
{
    std::string framed = line;
    framed += '\n';
    size_t off = 0;
    while (off < framed.size()) {
        ssize_t n =
            ::write(fd, framed.data() + off, framed.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;  // EPIPE: peer exited
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

LineReader::Fill
LineReader::fill(int fd)
{
    char chunk[4096];
    while (true) {
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n > 0) {
            buf.append(chunk, static_cast<size_t>(n));
            return Fill::Data;
        }
        if (n == 0)
            return Fill::Eof;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return Fill::WouldBlock;
        return Fill::Eof;  // treat hard errors as a dead peer
    }
}

bool
LineReader::next(std::string &line)
{
    size_t pos = buf.find('\n', scanned);
    if (pos == std::string::npos) {
        scanned = buf.size();
        return false;
    }
    line.assign(buf, 0, pos);
    buf.erase(0, pos + 1);
    scanned = 0;
    return true;
}

bool
readLineBlocking(int fd, LineReader &reader, std::string &line)
{
    while (!reader.next(line)) {
        if (reader.fill(fd) == LineReader::Fill::Eof)
            return reader.next(line);
    }
    return true;
}

} // namespace overgen::serve
