#include "serve/wire.h"

#include <cerrno>
#include <unistd.h>

#include "common/hex.h"
#include "common/logging.h"

namespace overgen::serve {

int
JobSet::addDesign(const adg::SysAdg &design)
{
    return addDesignJson(design.toJson());
}

int
JobSet::addDesignJson(Json design)
{
    std::string key = design.dump();
    auto it = designIds.find(key);
    if (it != designIds.end())
        return it->second;
    int id = static_cast<int>(designs.size());
    designs.push_back(std::move(design));
    designIds.emplace(std::move(key), id);
    return id;
}

uint64_t
JobSet::addJob(const std::string &workload, int designId,
               bool applyTuning, bool smallSize)
{
    OG_ASSERT(designId >= 0 &&
                  designId < static_cast<int>(designs.size()),
              "job references unknown design id ", designId);
    JobSpec job;
    job.index = jobs.size();
    job.workload = workload;
    job.designId = designId;
    job.applyTuning = applyTuning;
    job.smallSize = smallSize;
    jobs.push_back(std::move(job));
    return jobs.back().index;
}

uint64_t
JobSet::addMatchJob(const std::string &workload,
                    std::vector<int> designIds, bool applyTuning,
                    bool smallSize)
{
    for (int id : designIds) {
        OG_ASSERT(id >= 0 && id < static_cast<int>(designs.size()),
                  "match job references unknown design id ", id);
    }
    JobSpec job;
    job.index = jobs.size();
    job.kind = JobKind::Match;
    job.workload = workload;
    job.matchDesigns = std::move(designIds);
    job.applyTuning = applyTuning;
    job.smallSize = smallSize;
    jobs.push_back(std::move(job));
    return jobs.back().index;
}

uint64_t
JobSet::addWarmJob(const std::string &workload, uint64_t seed,
                   int iterations, bool applyTuning, bool smallSize)
{
    JobSpec job;
    job.index = jobs.size();
    job.kind = JobKind::Warm;
    job.workload = workload;
    job.warmSeed = seed;
    job.warmIterations = iterations;
    job.applyTuning = applyTuning;
    job.smallSize = smallSize;
    jobs.push_back(std::move(job));
    return jobs.back().index;
}

Json
jobToJson(const JobSpec &job)
{
    Json obj = Json::makeObject();
    obj.set("index", Json(job.index));
    obj.set("workload", Json(job.workload));
    obj.set("design", Json(job.designId));
    if (job.smallSize)
        obj.set("small", Json(true));
    if (job.applyTuning)
        obj.set("tuning", Json(true));
    if (job.dramLatency > 0)
        obj.set("dram_latency", Json(job.dramLatency));
    if (job.deadlockCycles >= 0)
        obj.set("deadlock_cycles", Json(job.deadlockCycles));
    if (job.kind == JobKind::Match)
        obj.set("kind", Json("match"));
    else if (job.kind == JobKind::Warm)
        obj.set("kind", Json("warm"));
    if (!job.matchDesigns.empty()) {
        Json ids = Json::makeArray();
        for (int id : job.matchDesigns)
            ids.push(Json(id));
        obj.set("match_designs", std::move(ids));
    }
    if (job.kind == JobKind::Warm) {
        obj.set("warm_seed", Json(hexU64(job.warmSeed)));
        obj.set("warm_iters", Json(job.warmIterations));
    }
    return obj;
}

JobSpec
jobFromJson(const Json &json)
{
    JobSpec job;
    job.index = static_cast<uint64_t>(json.at("index").asInt());
    job.workload = json.at("workload").asString();
    job.designId = static_cast<int>(json.at("design").asInt());
    if (json.contains("small"))
        job.smallSize = json.at("small").asBool();
    if (json.contains("tuning"))
        job.applyTuning = json.at("tuning").asBool();
    if (json.contains("dram_latency"))
        job.dramLatency =
            static_cast<int>(json.at("dram_latency").asInt());
    if (json.contains("deadlock_cycles"))
        job.deadlockCycles = json.at("deadlock_cycles").asInt();
    if (json.contains("kind")) {
        const std::string &kind = json.at("kind").asString();
        if (kind == "match")
            job.kind = JobKind::Match;
        else if (kind == "warm")
            job.kind = JobKind::Warm;
        else
            OG_FATAL("unknown job kind '", kind, "' on the wire");
    }
    if (json.contains("match_designs")) {
        for (const Json &id : json.at("match_designs").asArray())
            job.matchDesigns.push_back(
                static_cast<int>(id.asInt()));
    }
    if (json.contains("warm_seed"))
        job.warmSeed = parseHexU64(json.at("warm_seed").asString());
    if (json.contains("warm_iters"))
        job.warmIterations =
            static_cast<int>(json.at("warm_iters").asInt());
    return job;
}

Json
scoreToJson(const WireScore &score)
{
    Json obj = Json::makeObject();
    obj.set("design", Json(score.design));
    obj.set("feasible", Json(score.feasible));
    obj.set("score", Json(score.score));
    obj.set("ipc", Json(score.ipc));
    if (!score.variant.empty())
        obj.set("variant", Json(score.variant));
    if (!score.bottleneck.empty())
        obj.set("bottleneck", Json(score.bottleneck));
    return obj;
}

WireScore
scoreFromJson(const Json &json)
{
    WireScore score;
    score.design = static_cast<int>(json.at("design").asInt());
    score.feasible = json.at("feasible").asBool();
    score.score = json.at("score").asNumber();
    score.ipc = json.at("ipc").asNumber();
    if (json.contains("variant"))
        score.variant = json.at("variant").asString();
    if (json.contains("bottleneck"))
        score.bottleneck = json.at("bottleneck").asString();
    return score;
}

Json
resultToJson(const ResultRow &row)
{
    Json obj = Json::makeObject();
    obj.set("ok", Json(row.ok));
    obj.set("deadlocked", Json(row.deadlocked));
    if (!row.diagnostic.empty())
        obj.set("diagnostic", Json(row.diagnostic));
    obj.set("variant", Json(row.variant));
    obj.set("cycles", Json(row.cycles));
    obj.set("ipc", Json(row.ipc));
    if (!row.scores.empty()) {
        Json scores = Json::makeArray();
        for (const WireScore &score : row.scores)
            scores.push(scoreToJson(score));
        obj.set("scores", std::move(scores));
    }
    if (!row.payload.isNull())
        obj.set("payload", row.payload);
    return obj;
}

ResultRow
resultFromJson(const Json &json)
{
    ResultRow row;
    row.ok = json.at("ok").asBool();
    row.deadlocked = json.at("deadlocked").asBool();
    if (json.contains("diagnostic"))
        row.diagnostic = json.at("diagnostic").asString();
    row.variant = json.at("variant").asString();
    row.cycles = static_cast<uint64_t>(json.at("cycles").asInt());
    row.ipc = json.at("ipc").asNumber();
    if (json.contains("scores")) {
        for (const Json &score : json.at("scores").asArray())
            row.scores.push_back(scoreFromJson(score));
    }
    if (json.contains("payload"))
        row.payload = json.at("payload");
    return row;
}

std::string
mergedLine(const JobSpec &job, const ResultRow &row)
{
    // Object keys serialize map-sorted, and doubles print as %.17g
    // (exact round-trip through parse), so this line is a pure
    // function of the job and the deterministic simulation.
    Json obj = resultToJson(row);
    obj.set("index", Json(job.index));
    obj.set("workload", Json(job.workload));
    return obj.dump();
}

std::string
mergedJsonl(const JobSet &set, const std::vector<ResultRow> &rows)
{
    OG_ASSERT(rows.size() == set.jobs.size(),
              "result rows (", rows.size(), ") do not cover the job "
              "set (", set.jobs.size(), ")");
    std::string out;
    for (size_t i = 0; i < set.jobs.size(); ++i) {
        out += mergedLine(set.jobs[i], rows[i]);
        out += '\n';
    }
    return out;
}

std::string
bytesToHex(const std::vector<uint8_t> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (uint8_t b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

namespace {

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    return -1;
}

} // namespace

bool
hexToBytes(const std::string &hex, std::vector<uint8_t> &out)
{
    out.clear();
    if (hex.size() % 2 != 0)
        return false;
    out.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
        int hi = hexNibble(hex[i]);
        int lo = hexNibble(hex[i + 1]);
        if (hi < 0 || lo < 0) {
            out.clear();
            return false;
        }
        out.push_back(static_cast<uint8_t>((hi << 4) | lo));
    }
    return true;
}

bool
writeLine(int fd, const std::string &line)
{
    std::string framed = line;
    framed += '\n';
    size_t off = 0;
    while (off < framed.size()) {
        ssize_t n =
            ::write(fd, framed.data() + off, framed.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;  // EPIPE: peer exited
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

LineReader::Fill
LineReader::fill(int fd)
{
    char chunk[4096];
    while (true) {
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n > 0) {
            buf.append(chunk, static_cast<size_t>(n));
            return Fill::Data;
        }
        if (n == 0)
            return Fill::Eof;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return Fill::WouldBlock;
        return Fill::Eof;  // treat hard errors as a dead peer
    }
}

bool
LineReader::next(std::string &line)
{
    size_t pos = buf.find('\n', scanned);
    if (pos == std::string::npos) {
        scanned = buf.size();
        return false;
    }
    line.assign(buf, 0, pos);
    buf.erase(0, pos + 1);
    scanned = 0;
    return true;
}

bool
readLineBlocking(int fd, LineReader &reader, std::string &line)
{
    while (!reader.next(line)) {
        if (reader.fill(fd) == LineReader::Fill::Eof)
            return reader.next(line);
    }
    return true;
}

} // namespace overgen::serve
