#ifndef OVERGEN_SERVE_COORDINATOR_H
#define OVERGEN_SERVE_COORDINATOR_H

/**
 * @file
 * The coordinator side of the overlay-generation job server: shard a
 * JobSet across a pool of forked worker processes, stream result rows
 * back over pipes, and survive stragglers and crashes (see DESIGN.md
 * "Serving layer" for the retry/timeout state machine).
 *
 * Robustness:
 *  - worker crash (pipe EOF / SIGCHLD reap): the in-flight shard is
 *    re-queued with bounded backoff and a replacement worker forked;
 *  - straggler (no heartbeat/result within `deadlineMs`): a duplicate
 *    attempt is dispatched to another worker — first result per job
 *    wins, late duplicates are counted and dropped;
 *  - attempts are capped at `maxAttempts` per shard; exhausted shards
 *    surface as not-ok rows with an "abandoned" diagnostic instead of
 *    hanging the batch.
 *
 * Mid-shard resume: workers stream rows as they finish (never only at
 * shard end), so the coordinator banks partial progress and a
 * re-dispatch carries only the jobs still missing rows. With
 * `checkpointEvery` set, workers additionally stream mid-simulation
 * checkpoints (sealed sim::Snapshot images); the coordinator persists
 * the latest one per unfinished job and attaches it to the
 * re-dispatch, so a SIGKILLed worker's replacement re-enters the
 * interrupted simulation via sim::resumeFrom instead of starting from
 * cycle 0 — bit-identically, so the merged output is unchanged
 * (ServeSummary::resumed counts rows produced this way).
 *
 * Determinism: rows are stored by job index and serialized in index
 * order; row content is a pure function of the job descriptor, so
 * mergedJsonl() is byte-identical for any worker count and shard size
 * (tests/serve/coordinator_test.cc pins this).
 *
 * Threading: the coordinator is strictly single-threaded (one poll()
 * loop), which keeps fork() safe — no locks can be held at fork time.
 * Call it before creating harness thread pools, or from a thread that
 * owns no pool.
 */

#include <functional>
#include <string>
#include <sys/types.h>
#include <vector>

#include "serve/wire.h"

namespace overgen::telemetry {
class Sink;
} // namespace overgen::telemetry

namespace overgen::serve {

/** Coordinator knobs. */
struct CoordinatorOptions
{
    /** Worker processes to fork (clamped to the shard count). */
    int workers = 2;
    /** Jobs per shard (0 = the whole set as one shard). */
    size_t shardSize = 1;
    /** sim::runBatch threads inside each worker (1 = serial). */
    int simThreadsPerWorker = 1;
    /** Straggler deadline: re-dispatch a shard whose attempt shows no
     * heartbeat or result for this long (0 disables). */
    int deadlineMs = 0;
    /** Total attempts per shard before it is abandoned. */
    int maxAttempts = 3;
    /** Backoff base: a re-queued shard waits attempts * backoffMs
     * before re-dispatch. */
    int backoffMs = 25;
    /** Fork a replacement when a worker dies (bounded; see
     * ServeSummary::respawns). */
    bool respawnWorkers = true;
    /** Orderly-shutdown grace before SIGKILLing lingering workers. */
    int shutdownGraceMs = 2000;
    /** Workers stream a mid-run simulation checkpoint every this many
     * cycles (serial Generate jobs only; 0 disables). The coordinator
     * keeps the latest per unfinished job and hands it back on
     * re-dispatch, so a crashed worker's replacement resumes the
     * interrupted simulation mid-run (see the file comment). */
    uint64_t checkpointEvery = 0;
    /** Telemetry sink: serve/... counters land in its registry. */
    telemetry::Sink *sink = nullptr;
    /** Executor for Match/Warm jobs, inherited by every forked worker
     * (see serve::JobHandler). Fork preserves the closure, so install
     * it before serveJobs(); it must be fork-safe (no locks held, no
     * thread pools captured). */
    JobHandler handler;
    /**
     * Test/observability hook: called for every record a worker sends,
     * with the worker's pool index and pid. The robustness tests use
     * it to SIGKILL/SIGSTOP a worker mid-run; it must not write to
     * coordinator state.
     */
    std::function<void(const Json &record, int worker, pid_t pid)>
        onRecord;
};

/** Drop/retry accounting for one serveJobs() call — the payload of
 * the final summary record. */
struct ServeSummary
{
    uint64_t jobs = 0;
    uint64_t shards = 0;
    uint64_t workersSpawned = 0;  //!< initial forks + respawns
    uint64_t respawns = 0;
    uint64_t retries = 0;     //!< re-dispatches (crash + straggler)
    uint64_t timeouts = 0;    //!< straggler deadlines that fired
    uint64_t crashes = 0;     //!< workers that died with work in flight
    uint64_t duplicates = 0;  //!< late duplicate rows dropped
    uint64_t heartbeats = 0;
    uint64_t checkpoints = 0; //!< mid-run "ckpt" records banked
    uint64_t resumed = 0;     //!< rows produced by a checkpoint resume
    uint64_t abandoned = 0;   //!< jobs failed after maxAttempts
    bool ok = false;          //!< every job produced a real row
};

/** Everything serveJobs() produces. */
struct ServeOutcome
{
    /** One row per job, index-ordered (rows[i] is jobs[i]). */
    std::vector<ResultRow> rows;
    ServeSummary summary;

    /** The summary as a JSONL-ready record. */
    Json summaryJson() const;
};

/**
 * Run every job of @p set across a pool of forked workers and return
 * the index-ordered rows plus the retry/drop accounting. Blocks until
 * every job has a row (real or abandoned) and every worker is reaped.
 */
ServeOutcome serveJobs(const JobSet &set,
                       const CoordinatorOptions &options = {});

} // namespace overgen::serve

#endif // OVERGEN_SERVE_COORDINATOR_H
