#include "serve/coordinator.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>

#include "common/logging.h"
#include "serve/shard.h"
#include "serve/worker.h"
#include "telemetry/sink.h"

namespace overgen::serve {

namespace {

using Clock = std::chrono::steady_clock;

int64_t
msBetween(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               to - from)
        .count();
}

/** One forked worker and its pipes (parent-side view). */
struct WorkerState
{
    pid_t pid = -1;
    int toFd = -1;    //!< coordinator -> worker
    int fromFd = -1;  //!< worker -> coordinator
    LineReader reader;
    int shard = -1;  //!< in-flight shard id, -1 when idle
    bool alive = false;
};

/** Dispatch/retry state of one shard. */
struct ShardTrack
{
    Shard shard;
    int attempts = 0;  //!< dispatches so far
    int inFlight = 0;  //!< concurrently running attempts
    bool completed = false;
    Clock::time_point lastProgress;  //!< last hb/ckpt/result seen
    Clock::time_point notBefore;     //!< backoff gate for re-dispatch
    /** Latest streamed checkpoint per unfinished job (job index ->
     * hex snapshot), handed back on re-dispatch so a replacement
     * worker resumes mid-simulation. Cleared on completion. */
    std::map<uint64_t, std::string> checkpoints;
};

/** The single-threaded coordinator event loop (see header). */
class Coordinator
{
  public:
    Coordinator(const JobSet &jobSet, const CoordinatorOptions &opts)
        : set(jobSet), options(opts)
    {
        Json record = Json::makeObject();
        record.set("t", Json("designs"));
        record.set("designs",
                   Json(Json::Array(set.designs.begin(),
                                    set.designs.end())));
        designsLine = record.dump();
    }

    ServeOutcome
    run()
    {
        outcome.rows.resize(set.jobs.size());
        haveRow.assign(set.jobs.size(), false);
        summary().jobs = set.jobs.size();
        if (set.jobs.empty()) {
            summary().ok = true;
            return std::move(outcome);
        }

        // A worker dying mid-write must surface as EPIPE, not SIGPIPE.
        struct sigaction ignore = {};
        struct sigaction saved = {};
        ignore.sa_handler = SIG_IGN;
        ::sigaction(SIGPIPE, &ignore, &saved);

        std::vector<Shard> shards =
            planShards(set.jobs.size(), options.shardSize);
        summary().shards = shards.size();
        tracks.reserve(shards.size());
        for (const Shard &shard : shards) {
            ShardTrack track;
            track.shard = shard;
            track.notBefore = Clock::now();
            tracks.push_back(track);
            pending.push_back(shard.id);
        }
        respawnBudget = static_cast<int>(shards.size()) *
                        std::max(options.maxAttempts, 1);

        int poolSize = std::max(
            1, std::min<int>(options.workers,
                             static_cast<int>(shards.size())));
        for (int i = 0; i < poolSize; ++i)
            spawnWorker();

        while (filledRows < set.jobs.size()) {
            dispatch();
            pollWorkers(nextTimeoutMs());
            checkDeadlines();
            ensureLiveness();
        }
        shutdown();
        ::sigaction(SIGPIPE, &saved, nullptr);

        summary().ok = summary().abandoned == 0;
        count("serve/jobs/completed",
              filledRows - summary().abandoned);
        return std::move(outcome);
    }

  private:
    ServeSummary &summary() { return outcome.summary; }

    void
    count(const std::string &path, uint64_t n = 1)
    {
        if (options.sink != nullptr && n > 0)
            options.sink->registry().counter(path).add(n);
    }

    void
    spawnWorker()
    {
        int toChild[2];
        int fromChild[2];
        OG_ASSERT(::pipe(toChild) == 0 && ::pipe(fromChild) == 0,
                  "pipe() failed");
        pid_t pid = ::fork();
        OG_ASSERT(pid >= 0, "fork() failed");
        if (pid == 0) {
            // Child: drop every inherited coordinator fd except this
            // worker's own pipe ends, then serve until "bye"/EOF.
            ::close(toChild[1]);
            ::close(fromChild[0]);
            for (const WorkerState &other : workers) {
                if (other.toFd >= 0)
                    ::close(other.toFd);
                if (other.fromFd >= 0)
                    ::close(other.fromFd);
            }
            WorkerOptions wopts;
            wopts.simThreads = options.simThreadsPerWorker;
            wopts.handler = options.handler;
            wopts.checkpointEvery = options.checkpointEvery;
            ::_exit(workerLoop(toChild[0], fromChild[1], wopts));
        }
        ::close(toChild[0]);
        ::close(fromChild[1]);
        int flags = ::fcntl(fromChild[0], F_GETFL, 0);
        ::fcntl(fromChild[0], F_SETFL, flags | O_NONBLOCK);

        WorkerState worker;
        worker.pid = pid;
        worker.toFd = toChild[1];
        worker.fromFd = fromChild[0];
        worker.alive = true;
        int index = idleSlot();
        if (index >= 0) {
            workers[index] = std::move(worker);
        } else {
            index = static_cast<int>(workers.size());
            workers.push_back(std::move(worker));
        }
        ++summary().workersSpawned;
        count("serve/workers/spawned");
        if (!writeLine(workers[index].toFd, designsLine))
            onWorkerGone(index);
    }

    /** @return a dead slot to reuse for a respawn, or -1. */
    int
    idleSlot() const
    {
        for (size_t i = 0; i < workers.size(); ++i)
            if (!workers[i].alive)
                return static_cast<int>(i);
        return -1;
    }

    void
    dispatch()
    {
        while (true) {
            int workerIndex = -1;
            for (size_t i = 0; i < workers.size(); ++i) {
                if (workers[i].alive && workers[i].shard < 0) {
                    workerIndex = static_cast<int>(i);
                    break;
                }
            }
            if (workerIndex < 0)
                return;
            int shardId = popDispatchable();
            if (shardId < 0)
                return;
            sendShard(workerIndex, shardId);
        }
    }

    /** Pop the first pending shard that is not completed and whose
     * backoff gate has passed; -1 when none is ready. */
    int
    popDispatchable()
    {
        Clock::time_point now = Clock::now();
        for (auto it = pending.begin(); it != pending.end();) {
            ShardTrack &track = tracks[*it];
            if (!track.completed && shardFilled(track)) {
                // Every row arrived before the attempt's done record
                // (e.g. the worker crashed between its last result
                // and shard-done): nothing left to dispatch.
                track.completed = true;
                track.checkpoints.clear();
            }
            if (track.completed) {
                // Completed while queued (a duplicate attempt won).
                it = pending.erase(it);
                continue;
            }
            if (track.notBefore <= now) {
                int id = *it;
                pending.erase(it);
                return id;
            }
            ++it;
        }
        return -1;
    }

    void
    sendShard(int workerIndex, int shardId)
    {
        ShardTrack &track = tracks[shardId];
        Json record = Json::makeObject();
        record.set("t", Json("shard"));
        record.set("shard", Json(shardId));
        // Only the jobs still missing rows: a re-dispatch after a
        // mid-shard crash carries the unfinished remainder, plus the
        // latest banked checkpoint for any job interrupted mid-run.
        Json jobs = Json::makeArray();
        Json resume = Json::makeArray();
        size_t resumable = 0;
        for (size_t j = 0; j < track.shard.count; ++j) {
            size_t index = track.shard.first + j;
            if (haveRow[index])
                continue;
            jobs.push(jobToJson(set.jobs[index]));
            auto it = track.checkpoints.find(index);
            if (it == track.checkpoints.end())
                continue;
            Json entry = Json::makeObject();
            entry.set("job", Json(static_cast<uint64_t>(index)));
            entry.set("snap", Json(it->second));
            resume.push(std::move(entry));
            ++resumable;
        }
        record.set("jobs", std::move(jobs));
        if (resumable > 0)
            record.set("resume", std::move(resume));

        if (track.attempts > 0) {
            ++summary().retries;
            count("serve/retries");
        }
        ++track.attempts;
        ++track.inFlight;
        track.lastProgress = Clock::now();
        workers[workerIndex].shard = shardId;
        count("serve/shards/dispatched");
        if (!writeLine(workers[workerIndex].toFd, record.dump())) {
            // The worker died before reading: the crash path sees the
            // in-flight shard and requeues/respawns as usual.
            onWorkerGone(workerIndex);
        }
    }

    int
    nextTimeoutMs() const
    {
        int64_t timeout = 250;  // liveness ceiling
        Clock::time_point now = Clock::now();
        if (options.deadlineMs > 0) {
            for (const ShardTrack &track : tracks) {
                if (track.completed || track.inFlight == 0)
                    continue;
                int64_t remain =
                    options.deadlineMs -
                    msBetween(track.lastProgress, now);
                timeout = std::min(timeout, std::max<int64_t>(remain,
                                                              1));
            }
        }
        for (int id : pending) {
            const ShardTrack &track = tracks[id];
            if (track.completed)
                continue;
            int64_t remain = msBetween(now, track.notBefore);
            if (remain > 0)
                timeout = std::min(timeout, remain);
        }
        return static_cast<int>(std::max<int64_t>(timeout, 1));
    }

    void
    pollWorkers(int timeoutMs)
    {
        std::vector<struct pollfd> fds;
        std::vector<int> fdWorker;
        for (size_t i = 0; i < workers.size(); ++i) {
            if (!workers[i].alive)
                continue;
            struct pollfd pfd;
            pfd.fd = workers[i].fromFd;
            pfd.events = POLLIN;
            pfd.revents = 0;
            fds.push_back(pfd);
            fdWorker.push_back(static_cast<int>(i));
        }
        if (fds.empty())
            return;
        int ready = ::poll(fds.data(),
                           static_cast<nfds_t>(fds.size()), timeoutMs);
        if (ready <= 0)
            return;
        for (size_t f = 0; f < fds.size(); ++f) {
            if (fds[f].revents == 0)
                continue;
            drainWorker(fdWorker[f]);
        }
    }

    void
    drainWorker(int workerIndex)
    {
        WorkerState &worker = workers[workerIndex];
        while (worker.alive) {
            LineReader::Fill fill = worker.reader.fill(worker.fromFd);
            std::string line;
            while (worker.reader.next(line))
                handleRecord(workerIndex, line);
            if (fill == LineReader::Fill::Eof) {
                onWorkerGone(workerIndex);
                return;
            }
            if (fill == LineReader::Fill::WouldBlock)
                return;
        }
    }

    void
    handleRecord(int workerIndex, const std::string &line)
    {
        Json record = Json::parse(line);
        if (options.onRecord) {
            options.onRecord(record, workerIndex,
                             workers[workerIndex].pid);
        }
        const std::string &type = record.at("t").asString();
        if (type == "hello")
            return;
        if (type == "hb") {
            ++summary().heartbeats;
            count("serve/heartbeats");
            int shardId =
                static_cast<int>(record.at("shard").asInt());
            if (!tracks[shardId].completed)
                tracks[shardId].lastProgress = Clock::now();
            return;
        }
        if (type == "ckpt") {
            // A mid-run checkpoint: bank the latest per job so a
            // replacement attempt resumes instead of restarting. Also
            // progress for the straggler clock — the simulation is
            // demonstrably advancing.
            ++summary().checkpoints;
            count("serve/checkpoints");
            int shardId =
                static_cast<int>(record.at("shard").asInt());
            size_t index =
                static_cast<size_t>(record.at("job").asInt());
            OG_ASSERT(index < set.jobs.size(),
                      "worker sent a checkpoint for unknown job ",
                      index);
            ShardTrack &track = tracks[shardId];
            if (track.completed)
                return;
            track.lastProgress = Clock::now();
            if (!haveRow[index])
                track.checkpoints[index] =
                    record.at("snap").asString();
            return;
        }
        if (type == "result") {
            size_t index =
                static_cast<size_t>(record.at("job").asInt());
            OG_ASSERT(index < set.jobs.size(),
                      "worker sent a row for unknown job ", index);
            if (haveRow[index]) {
                ++summary().duplicates;
                count("serve/duplicates");
                return;
            }
            outcome.rows[index] =
                resultFromJson(record.at("row"));
            haveRow[index] = true;
            ++filledRows;
            if (record.contains("resumed") &&
                record.at("resumed").asBool()) {
                ++summary().resumed;
                count("serve/resumed");
            }
            int shardId = workers[workerIndex].shard;
            if (shardId >= 0 && !tracks[shardId].completed) {
                tracks[shardId].lastProgress = Clock::now();
                tracks[shardId].checkpoints.erase(index);
            }
            return;
        }
        OG_ASSERT(type == "done", "unexpected worker record '", type,
                  "'");
        int shardId = static_cast<int>(record.at("shard").asInt());
        ShardTrack &track = tracks[shardId];
        track.inFlight = std::max(track.inFlight - 1, 0);
        workers[workerIndex].shard = -1;
        if (!track.completed && shardFilled(track)) {
            track.completed = true;
            track.checkpoints.clear();
        }
        if (!track.completed && track.inFlight == 0)
            requeueOrAbandon(shardId);
    }

    bool
    shardFilled(const ShardTrack &track) const
    {
        for (size_t j = 0; j < track.shard.count; ++j)
            if (!haveRow[track.shard.first + j])
                return false;
        return true;
    }

    void
    onWorkerGone(int workerIndex)
    {
        WorkerState &worker = workers[workerIndex];
        if (!worker.alive)
            return;
        worker.alive = false;
        ::close(worker.toFd);
        ::close(worker.fromFd);
        worker.toFd = worker.fromFd = -1;
        int status = 0;
        ::waitpid(worker.pid, &status, 0);
        int shardId = worker.shard;
        worker.shard = -1;
        if (shardId >= 0 && !tracks[shardId].completed) {
            ++summary().crashes;
            count("serve/crashes");
            ShardTrack &track = tracks[shardId];
            track.inFlight = std::max(track.inFlight - 1, 0);
            if (track.inFlight == 0)
                requeueOrAbandon(shardId);
            if (options.respawnWorkers && respawnBudget > 0) {
                --respawnBudget;
                ++summary().respawns;
                count("serve/respawns");
                spawnWorker();
            }
        }
    }

    void
    requeueOrAbandon(int shardId)
    {
        ShardTrack &track = tracks[shardId];
        if (track.attempts < options.maxAttempts) {
            track.notBefore =
                Clock::now() +
                std::chrono::milliseconds(
                    static_cast<int64_t>(options.backoffMs) *
                    track.attempts);
            if (std::find(pending.begin(), pending.end(), shardId) ==
                pending.end())
                pending.push_back(shardId);
            return;
        }
        for (size_t j = 0; j < track.shard.count; ++j) {
            size_t index = track.shard.first + j;
            if (haveRow[index])
                continue;
            ResultRow row;
            row.diagnostic =
                "abandoned after " + std::to_string(track.attempts) +
                " attempts";
            outcome.rows[index] = std::move(row);
            haveRow[index] = true;
            ++filledRows;
            ++summary().abandoned;
            count("serve/abandoned");
        }
        track.completed = true;
        track.checkpoints.clear();
    }

    void
    checkDeadlines()
    {
        if (options.deadlineMs <= 0)
            return;
        Clock::time_point now = Clock::now();
        for (ShardTrack &track : tracks) {
            if (track.completed || track.inFlight == 0)
                continue;
            if (msBetween(track.lastProgress, now) <
                options.deadlineMs)
                continue;
            ++summary().timeouts;
            count("serve/timeouts");
            track.lastProgress = now;  // one firing per deadline
            if (track.attempts < options.maxAttempts) {
                // Straggler: race a duplicate attempt; first result
                // per job wins, the loser's rows count as duplicates.
                if (std::find(pending.begin(), pending.end(),
                              track.shard.id) == pending.end())
                    pending.push_back(track.shard.id);
            } else {
                // Every allowed attempt is wedged: abandon now rather
                // than wait on workers that will never answer (any
                // late rows they do send drop as duplicates).
                requeueOrAbandon(track.shard.id);
            }
        }
    }

    /** Dead-pool backstop: with work left but nobody to run it (all
     * workers dead, respawns exhausted or disabled), fail the
     * remaining shards instead of spinning forever. */
    void
    ensureLiveness()
    {
        bool anyAlive = false;
        for (const WorkerState &worker : workers)
            anyAlive |= worker.alive;
        if (anyAlive)
            return;
        if (filledRows < set.jobs.size() &&
            (!options.respawnWorkers || respawnBudget <= 0)) {
            for (ShardTrack &track : tracks) {
                if (!track.completed) {
                    track.attempts = options.maxAttempts;
                    requeueOrAbandon(track.shard.id);
                }
            }
            return;
        }
        if (filledRows < set.jobs.size()) {
            --respawnBudget;
            ++summary().respawns;
            count("serve/respawns");
            spawnWorker();
        }
    }

    void
    shutdown()
    {
        Json bye = Json::makeObject();
        bye.set("t", Json("bye"));
        std::string byeLine = bye.dump();
        for (WorkerState &worker : workers) {
            if (worker.alive)
                writeLine(worker.toFd, byeLine);
        }
        Clock::time_point start = Clock::now();
        while (true) {
            bool anyAlive = false;
            for (size_t i = 0; i < workers.size(); ++i) {
                if (workers[i].alive) {
                    anyAlive = true;
                    drainWorker(static_cast<int>(i));
                }
            }
            if (!anyAlive)
                return;
            if (msBetween(start, Clock::now()) >
                options.shutdownGraceMs)
                break;
            pollWorkers(20);
        }
        // Grace expired: SIGKILL whatever lingers (a SIGSTOPped or
        // wedged worker) and reap it.
        for (size_t i = 0; i < workers.size(); ++i) {
            if (!workers[i].alive)
                continue;
            ::kill(workers[i].pid, SIGKILL);
            onWorkerGone(static_cast<int>(i));
        }
    }

    const JobSet &set;
    const CoordinatorOptions &options;
    std::string designsLine;
    ServeOutcome outcome;
    std::vector<bool> haveRow;
    size_t filledRows = 0;
    std::vector<WorkerState> workers;
    std::vector<ShardTrack> tracks;
    std::deque<int> pending;
    int respawnBudget = 0;
};

} // namespace

Json
ServeOutcome::summaryJson() const
{
    Json obj = Json::makeObject();
    obj.set("type", Json("serve_summary"));
    obj.set("jobs", Json(summary.jobs));
    obj.set("shards", Json(summary.shards));
    obj.set("workers_spawned", Json(summary.workersSpawned));
    obj.set("respawns", Json(summary.respawns));
    obj.set("retries", Json(summary.retries));
    obj.set("timeouts", Json(summary.timeouts));
    obj.set("crashes", Json(summary.crashes));
    obj.set("duplicates", Json(summary.duplicates));
    obj.set("heartbeats", Json(summary.heartbeats));
    obj.set("checkpoints", Json(summary.checkpoints));
    obj.set("resumed", Json(summary.resumed));
    obj.set("abandoned", Json(summary.abandoned));
    obj.set("ok", Json(summary.ok));
    return obj;
}

ServeOutcome
serveJobs(const JobSet &set, const CoordinatorOptions &options)
{
    Coordinator coordinator(set, options);
    return coordinator.run();
}

} // namespace overgen::serve
