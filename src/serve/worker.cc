#include "serve/worker.h"

#include <unistd.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "compiler/compile.h"
#include "sched/scheduler.h"
#include "sim/batch.h"
#include "workloads/suites.h"

namespace overgen::serve {

namespace {

/** One shard job readied for sim::runBatch. */
struct PreparedJob
{
    bool ok = false;
    wl::KernelSpec spec;
    std::shared_ptr<const adg::SysAdg> design;
    dfg::Mdfg mdfg;
    sched::Schedule schedule;
};

sim::SimConfig
configFor(const JobSpec &job, telemetry::Sink *sink)
{
    sim::SimConfig config;
    config.sink = sink;
    if (job.dramLatency > 0)
        config.dramLatency = job.dramLatency;
    if (job.deadlockCycles >= 0)
        config.deadlockCycles =
            static_cast<uint64_t>(job.deadlockCycles);
    return config;
}

PreparedJob
prepare(const JobSpec &job,
        const std::shared_ptr<const adg::SysAdg> &design)
{
    PreparedJob prepared;
    prepared.spec = job.smallSize
                        ? wl::smallWorkloadByName(job.workload)
                        : wl::workloadByName(job.workload);
    prepared.design = design;
    compiler::CompileOptions copts;
    copts.applyTuning = job.applyTuning;
    auto variants = compiler::compileVariants(prepared.spec, copts);
    sched::SpatialScheduler scheduler(design->adg);
    auto fit = scheduler.scheduleFirstFit(variants);
    if (!fit)
        return prepared;
    prepared.ok = true;
    prepared.mdfg = std::move(variants[fit->second]);
    prepared.schedule = std::move(fit->first);
    return prepared;
}

ResultRow
rowFrom(const PreparedJob &prepared, const sim::SimResult &result)
{
    ResultRow row;
    row.ok = result.completed;
    row.deadlocked = result.deadlocked;
    row.diagnostic = result.diagnostic;
    row.cycles = result.cycles;
    row.ipc = result.ipc;
    row.variant = prepared.mdfg.name;
    return row;
}

/** Route a Match/Warm job through the installed handler. */
ResultRow
dispatchHandled(const JobSpec &job,
                const std::vector<std::shared_ptr<const adg::SysAdg>>
                    &designs,
                const WorkerOptions &options)
{
    if (!options.handler) {
        ResultRow row;
        row.diagnostic = "no JobHandler installed for non-generate "
                         "job";
        return row;
    }
    return options.handler(job, designs);
}

} // namespace

ResultRow
runJob(const JobSpec &job, const adg::SysAdg &design,
       const WorkerOptions &options)
{
    if (job.kind != JobKind::Generate) {
        // In-process reference path for library jobs: a one-design
        // table, so matchDesigns ids must all be 0.
        std::vector<std::shared_ptr<const adg::SysAdg>> designs;
        designs.emplace_back(std::shared_ptr<const adg::SysAdg>(),
                             &design);
        return dispatchHandled(job, designs, options);
    }
    // Aliasing constructor: borrow the caller's design without a copy.
    PreparedJob prepared = prepare(
        job, std::shared_ptr<const adg::SysAdg>(
                 std::shared_ptr<const adg::SysAdg>(), &design));
    if (!prepared.ok)
        return {};
    wl::Memory memory;
    memory.init(prepared.spec);
    sim::SimResult result =
        sim::simulate(prepared.spec, prepared.mdfg, prepared.schedule,
                      design, memory, configFor(job, options.sink));
    return rowFrom(prepared, result);
}

int
workerLoop(int inFd, int outFd, const WorkerOptions &options)
{
    std::vector<std::shared_ptr<const adg::SysAdg>> designs;
    LineReader reader;
    std::string line;

    Json hello = Json::makeObject();
    hello.set("t", Json("hello"));
    hello.set("pid", Json(static_cast<int64_t>(::getpid())));
    if (!writeLine(outFd, hello.dump()))
        return 1;

    while (readLineBlocking(inFd, reader, line)) {
        Json record = Json::parse(line);
        const std::string &type = record.at("t").asString();
        if (type == "bye")
            return 0;
        if (type == "designs") {
            designs.clear();
            for (const Json &json : record.at("designs").asArray()) {
                designs.push_back(std::make_shared<const adg::SysAdg>(
                    adg::SysAdg::fromJson(json)));
            }
            continue;
        }
        OG_ASSERT(type == "shard", "worker got unexpected record '",
                  type, "'");
        int shard = static_cast<int>(record.at("shard").asInt());
        const Json::Array &jobJsons = record.at("jobs").asArray();

        // Prepare phase: compile + schedule each Generate job (and
        // run Match/Warm jobs through the handler), heartbeating so
        // the coordinator's straggler clock sees forward progress.
        std::vector<JobSpec> specs;
        std::vector<PreparedJob> prepared;
        std::vector<char> handled(jobJsons.size(), 0);
        std::vector<ResultRow> handledRows(jobJsons.size());
        for (size_t i = 0; i < jobJsons.size(); ++i) {
            JobSpec job = jobFromJson(jobJsons[i]);
            Json hb = Json::makeObject();
            hb.set("t", Json("hb"));
            hb.set("shard", Json(shard));
            hb.set("done", Json(static_cast<uint64_t>(i)));
            hb.set("total",
                   Json(static_cast<uint64_t>(jobJsons.size())));
            if (!writeLine(outFd, hb.dump()))
                return 1;
            if (job.kind != JobKind::Generate) {
                handled[i] = 1;
                handledRows[i] =
                    dispatchHandled(job, designs, options);
                prepared.emplace_back();  // skipped by the batch
                specs.push_back(std::move(job));
                continue;
            }
            OG_ASSERT(job.designId >= 0 &&
                          job.designId <
                              static_cast<int>(designs.size()),
                      "shard ", shard, " references unknown design ",
                      job.designId);
            prepared.push_back(prepare(job, designs[job.designId]));
            specs.push_back(std::move(job));
        }

        // Execute phase: the whole shard as one sim::runBatch.
        std::vector<sim::SimJob> batch;
        std::vector<size_t> batchOf;
        for (size_t i = 0; i < prepared.size(); ++i) {
            if (!prepared[i].ok)
                continue;
            sim::SimJob job;
            job.spec = &prepared[i].spec;
            job.mdfg = &prepared[i].mdfg;
            job.schedule = &prepared[i].schedule;
            job.design = prepared[i].design.get();
            job.config = configFor(specs[i], options.sink);
            batch.push_back(job);
            batchOf.push_back(i);
        }
        sim::BatchOptions batchOptions;
        batchOptions.threads = options.simThreads;
        std::vector<sim::SimResult> results =
            sim::runBatch(batch, batchOptions);

        // Stream phase: one result record per job, in job order.
        std::vector<ResultRow> rows(prepared.size());
        for (size_t j = 0; j < results.size(); ++j)
            rows[batchOf[j]] = rowFrom(prepared[batchOf[j]],
                                       results[j]);
        for (size_t i = 0; i < rows.size(); ++i)
            if (handled[i])
                rows[i] = std::move(handledRows[i]);
        for (size_t i = 0; i < rows.size(); ++i) {
            Json out = Json::makeObject();
            out.set("t", Json("result"));
            out.set("job", Json(specs[i].index));
            out.set("row", resultToJson(rows[i]));
            if (!writeLine(outFd, out.dump()))
                return 1;
        }
        Json done = Json::makeObject();
        done.set("t", Json("done"));
        done.set("shard", Json(shard));
        if (!writeLine(outFd, done.dump()))
            return 1;
    }
    return 0;  // coordinator closed the pipe: orderly EOF
}

} // namespace overgen::serve
