#include "serve/worker.h"

#include <unistd.h>

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "compiler/compile.h"
#include "sched/scheduler.h"
#include "sim/batch.h"
#include "sim/simulate.h"
#include "sim/snapshot.h"
#include "workloads/suites.h"

namespace overgen::serve {

namespace {

/** One shard job readied for sim::runBatch. */
struct PreparedJob
{
    bool ok = false;
    wl::KernelSpec spec;
    std::shared_ptr<const adg::SysAdg> design;
    dfg::Mdfg mdfg;
    sched::Schedule schedule;
};

sim::SimConfig
configFor(const JobSpec &job, telemetry::Sink *sink)
{
    sim::SimConfig config;
    config.sink = sink;
    if (job.dramLatency > 0)
        config.dramLatency = job.dramLatency;
    if (job.deadlockCycles >= 0)
        config.deadlockCycles =
            static_cast<uint64_t>(job.deadlockCycles);
    return config;
}

PreparedJob
prepare(const JobSpec &job,
        const std::shared_ptr<const adg::SysAdg> &design)
{
    PreparedJob prepared;
    prepared.spec = job.smallSize
                        ? wl::smallWorkloadByName(job.workload)
                        : wl::workloadByName(job.workload);
    prepared.design = design;
    compiler::CompileOptions copts;
    copts.applyTuning = job.applyTuning;
    auto variants = compiler::compileVariants(prepared.spec, copts);
    sched::SpatialScheduler scheduler(design->adg);
    auto fit = scheduler.scheduleFirstFit(variants);
    if (!fit)
        return prepared;
    prepared.ok = true;
    prepared.mdfg = std::move(variants[fit->second]);
    prepared.schedule = std::move(fit->first);
    return prepared;
}

ResultRow
rowFrom(const PreparedJob &prepared, const sim::SimResult &result)
{
    ResultRow row;
    row.ok = result.completed;
    row.deadlocked = result.deadlocked;
    row.diagnostic = result.diagnostic;
    row.cycles = result.cycles;
    row.ipc = result.ipc;
    row.variant = prepared.mdfg.name;
    return row;
}

/** A SnapshotSink that streams each engine checkpoint to the
 * coordinator as a "ckpt" record. A failed write means the
 * coordinator is gone; the flag is remembered and the simulation
 * finishes locally (its result write will fail too, exiting the
 * loop). */
class PipeSnapshotSink : public sim::SnapshotSink
{
  public:
    PipeSnapshotSink(int fd, int shard, uint64_t job)
        : fd(fd), shard(shard), job(job)
    {
    }

    void
    accept(uint64_t cycle, sim::Snapshot &&snap) override
    {
        Json record = Json::makeObject();
        record.set("t", Json("ckpt"));
        record.set("shard", Json(shard));
        record.set("job", Json(job));
        record.set("cycle", Json(cycle));
        record.set("snap", Json(bytesToHex(snap.encode())));
        ok = ok && writeLine(fd, record.dump());
    }

    bool ok = true;

  private:
    int fd;
    int shard;
    uint64_t job;
};

/** Route a Match/Warm job through the installed handler. */
ResultRow
dispatchHandled(const JobSpec &job,
                const std::vector<std::shared_ptr<const adg::SysAdg>>
                    &designs,
                const WorkerOptions &options)
{
    if (!options.handler) {
        ResultRow row;
        row.diagnostic = "no JobHandler installed for non-generate "
                         "job";
        return row;
    }
    return options.handler(job, designs);
}

} // namespace

ResultRow
runJob(const JobSpec &job, const adg::SysAdg &design,
       const WorkerOptions &options)
{
    if (job.kind != JobKind::Generate) {
        // In-process reference path for library jobs: a one-design
        // table, so matchDesigns ids must all be 0.
        std::vector<std::shared_ptr<const adg::SysAdg>> designs;
        designs.emplace_back(std::shared_ptr<const adg::SysAdg>(),
                             &design);
        return dispatchHandled(job, designs, options);
    }
    // Aliasing constructor: borrow the caller's design without a copy.
    PreparedJob prepared = prepare(
        job, std::shared_ptr<const adg::SysAdg>(
                 std::shared_ptr<const adg::SysAdg>(), &design));
    if (!prepared.ok)
        return {};
    wl::Memory memory;
    memory.init(prepared.spec);
    sim::SimResult result =
        sim::simulate(prepared.spec, prepared.mdfg, prepared.schedule,
                      design, memory, configFor(job, options.sink));
    return rowFrom(prepared, result);
}

int
workerLoop(int inFd, int outFd, const WorkerOptions &options)
{
    std::vector<std::shared_ptr<const adg::SysAdg>> designs;
    LineReader reader;
    std::string line;

    Json hello = Json::makeObject();
    hello.set("t", Json("hello"));
    hello.set("pid", Json(static_cast<int64_t>(::getpid())));
    if (!writeLine(outFd, hello.dump()))
        return 1;

    while (readLineBlocking(inFd, reader, line)) {
        Json record = Json::parse(line);
        const std::string &type = record.at("t").asString();
        if (type == "bye")
            return 0;
        if (type == "designs") {
            designs.clear();
            for (const Json &json : record.at("designs").asArray()) {
                designs.push_back(std::make_shared<const adg::SysAdg>(
                    adg::SysAdg::fromJson(json)));
            }
            continue;
        }
        OG_ASSERT(type == "shard", "worker got unexpected record '",
                  type, "'");
        int shard = static_cast<int>(record.at("shard").asInt());
        const Json::Array &jobJsons = record.at("jobs").asArray();

        std::vector<JobSpec> specs;
        specs.reserve(jobJsons.size());
        for (const Json &json : jobJsons)
            specs.push_back(jobFromJson(json));

        // Resume snapshots the coordinator banked from an earlier
        // attempt's "ckpt" records, keyed by job index.
        std::map<uint64_t, std::string> resumeSnaps;
        if (record.contains("resume")) {
            for (const Json &entry : record.at("resume").asArray())
                resumeSnaps[static_cast<uint64_t>(
                    entry.at("job").asInt())] =
                    entry.at("snap").asString();
        }

        auto heartbeat = [&](size_t i) {
            Json hb = Json::makeObject();
            hb.set("t", Json("hb"));
            hb.set("shard", Json(shard));
            hb.set("done", Json(static_cast<uint64_t>(i)));
            hb.set("total",
                   Json(static_cast<uint64_t>(specs.size())));
            return writeLine(outFd, hb.dump());
        };
        auto streamRow = [&](const JobSpec &spec,
                             const ResultRow &row, bool resumed) {
            Json out = Json::makeObject();
            out.set("t", Json("result"));
            out.set("job", Json(spec.index));
            out.set("row", resultToJson(row));
            if (resumed)
                out.set("resumed", Json(true));
            return writeLine(outFd, out.dump());
        };

        // Execute in waves of up to simThreads consecutive Generate
        // jobs, streaming every wave's rows (in job order) before the
        // next wave starts — partial shard progress survives a crash.
        // Each job heartbeats at prepare time so the coordinator's
        // straggler clock sees forward progress.
        size_t waveCap = static_cast<size_t>(
            std::max(options.simThreads, 1));
        size_t i = 0;
        while (i < specs.size()) {
            if (specs[i].kind != JobKind::Generate) {
                if (!heartbeat(i))
                    return 1;
                ResultRow row =
                    dispatchHandled(specs[i], designs, options);
                if (!streamRow(specs[i], row, false))
                    return 1;
                ++i;
                continue;
            }
            size_t end = i;
            while (end < specs.size() &&
                   specs[end].kind == JobKind::Generate &&
                   end - i < waveCap)
                ++end;
            std::vector<PreparedJob> prepared;
            for (size_t j = i; j < end; ++j) {
                if (!heartbeat(j))
                    return 1;
                OG_ASSERT(specs[j].designId >= 0 &&
                              specs[j].designId <
                                  static_cast<int>(designs.size()),
                          "shard ", shard,
                          " references unknown design ",
                          specs[j].designId);
                prepared.push_back(
                    prepare(specs[j], designs[specs[j].designId]));
            }
            if (end - i == 1) {
                // Serial wave: stream checkpoints, resume when the
                // shard record carried a snapshot for this job.
                const JobSpec &spec = specs[i];
                ResultRow row;
                bool resumed = false;
                if (prepared[0].ok) {
                    sim::SimConfig config =
                        configFor(spec, options.sink);
                    PipeSnapshotSink ckpt(outFd, shard, spec.index);
                    if (options.checkpointEvery > 0) {
                        config.checkpointEvery =
                            options.checkpointEvery;
                        config.checkpointSink = &ckpt;
                    }
                    wl::Memory memory;
                    memory.init(prepared[0].spec);
                    sim::SimResult result;
                    auto it = resumeSnaps.find(spec.index);
                    if (it != resumeSnaps.end()) {
                        std::vector<uint8_t> bytes;
                        sim::Snapshot snap;
                        if (hexToBytes(it->second, bytes) &&
                            sim::Snapshot::decode(bytes, snap)) {
                            result = sim::resumeFrom(
                                snap, prepared[0].spec,
                                prepared[0].mdfg,
                                prepared[0].schedule,
                                *prepared[0].design, memory, config);
                            resumed = true;
                        }
                    }
                    if (!resumed)
                        result = sim::simulate(
                            prepared[0].spec, prepared[0].mdfg,
                            prepared[0].schedule, *prepared[0].design,
                            memory, config);
                    row = rowFrom(prepared[0], result);
                }
                if (!streamRow(spec, row, resumed))
                    return 1;
                i = end;
                continue;
            }
            // Multi-job wave: one sim::runBatch across the wave.
            std::vector<sim::SimJob> batch;
            std::vector<size_t> batchOf;
            for (size_t j = i; j < end; ++j) {
                if (!prepared[j - i].ok)
                    continue;
                sim::SimJob job;
                job.spec = &prepared[j - i].spec;
                job.mdfg = &prepared[j - i].mdfg;
                job.schedule = &prepared[j - i].schedule;
                job.design = prepared[j - i].design.get();
                job.config = configFor(specs[j], options.sink);
                batch.push_back(job);
                batchOf.push_back(j - i);
            }
            sim::BatchOptions batchOptions;
            batchOptions.threads = options.simThreads;
            std::vector<sim::SimResult> results =
                sim::runBatch(batch, batchOptions);
            std::vector<ResultRow> rows(end - i);
            for (size_t j = 0; j < results.size(); ++j)
                rows[batchOf[j]] =
                    rowFrom(prepared[batchOf[j]], results[j]);
            for (size_t j = i; j < end; ++j) {
                if (!streamRow(specs[j], rows[j - i], false))
                    return 1;
            }
            i = end;
        }
        Json done = Json::makeObject();
        done.set("t", Json("done"));
        done.set("shard", Json(shard));
        if (!writeLine(outFd, done.dump()))
            return 1;
    }
    return 0;  // coordinator closed the pipe: orderly EOF
}

} // namespace overgen::serve
