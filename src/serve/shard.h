#ifndef OVERGEN_SERVE_SHARD_H
#define OVERGEN_SERVE_SHARD_H

/**
 * @file
 * Shard planning for the job server: split a JobSet into contiguous
 * shards — the unit of dispatch, heartbeating, retry, and
 * re-dispatch. Planning is a pure function of (job count, shard
 * size); the coordinator dispatches shards to whichever worker is
 * idle, and the merged output stays byte-identical because rows are
 * keyed by job index, never by shard or worker.
 */

#include <cstddef>
#include <vector>

namespace overgen::serve {

/** One dispatch unit: a contiguous job-index range. */
struct Shard
{
    int id = 0;
    size_t first = 0;  //!< first job index
    size_t count = 0;  //!< number of jobs
};

/**
 * Split @p jobCount jobs into shards of @p shardSize (the last shard
 * takes the remainder; 0 means one shard holding everything).
 */
std::vector<Shard> planShards(size_t jobCount, size_t shardSize);

} // namespace overgen::serve

#endif // OVERGEN_SERVE_SHARD_H
