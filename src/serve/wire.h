#ifndef OVERGEN_SERVE_WIRE_H
#define OVERGEN_SERVE_WIRE_H

/**
 * @file
 * Wire protocol of the overlay-generation job server: newline-
 * delimited JSON records exchanged between the coordinator and its
 * worker processes over pipes (see DESIGN.md "Serving layer").
 *
 * Record types (every record is one line, discriminated by "t"):
 *
 *   coordinator -> worker
 *     {"t":"designs","designs":[<sysadg json>, ...]}   design table
 *     {"t":"shard","shard":K,"jobs":[<job>, ...],
 *      "resume":[{"job":J,"snap":"<hex>"}, ...]}       work assignment
 *     {"t":"bye"}                                      orderly shutdown
 *
 *   worker -> coordinator
 *     {"t":"hello","pid":P}                            post-fork handshake
 *     {"t":"hb","shard":K,"done":D,"total":N}          progress heartbeat
 *     {"t":"ckpt","shard":K,"job":J,"cycle":C,
 *      "snap":"<hex>"}                                 mid-run checkpoint
 *     {"t":"result","job":J,"row":{...},
 *      "resumed":true?}                                one OverlayRun row
 *     {"t":"done","shard":K}                           shard complete
 *
 * A shard record's "jobs" array holds only the jobs that still need
 * rows — a re-dispatch after a crash carries just the unfinished
 * remainder. Its optional "resume" array carries the latest
 * checkpoint the coordinator banked for each such job (a hex-encoded
 * sim::Snapshot streamed earlier by a "ckpt" record), so the
 * replacement worker re-enters the simulation mid-run via
 * sim::resumeFrom instead of starting from cycle 0. A row produced
 * that way sets "resumed" on its result record; the flag lives on the
 * record wrapper, never in the row, so the merged output stays
 * byte-identical to a crash-free run.
 *
 * Determinism contract: a job's result row is a pure function of the
 * job descriptor (the simulator is single-threaded-deterministic), and
 * rows carry no wall-clock, pid, or worker-identity fields — so the
 * merged, index-ordered output is byte-identical for any worker count
 * and shard size. Progress and identity live only in heartbeat
 * records and the final summary, which are not part of the merged
 * stream.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adg/adg.h"
#include "common/json.h"

namespace overgen::serve {

/**
 * What a job asks the worker to do. Generate is the original serve
 * contract (compile + schedule + simulate one workload on one
 * design). Match and Warm are the overlay-library job types
 * (src/library/): the serve layer carries them generically and hands
 * them to the installed JobHandler — it never depends on the library.
 */
enum class JobKind : uint8_t {
    Generate,  //!< simulate job.workload on job.designId
    Match,     //!< score job.workload against job.matchDesigns
    Warm,      //!< bounded DSE for job.workload (seed/iterations below)
};

/** One (design, workload) simulation job, the unit of retry and of
 * the merged output ordering. */
struct JobSpec
{
    /** Position of this job's row in the merged output. */
    uint64_t index = 0;
    /** Workload name (wl::workloadByName / smallWorkloadByName key). */
    std::string workload;
    /** Run the shrunken test-size instance instead of the paper size. */
    bool smallSize = false;
    /** Index into the JobSet design table. */
    int designId = 0;
    /** Compile with OverGen's source tuning (fig13/17 convention). */
    bool applyTuning = false;
    /** @name SimConfig overrides (defaults keep the stock values) */
    /// @{
    int dramLatency = 0;          //!< 0 keeps SimConfig::dramLatency
    int64_t deadlockCycles = -1;  //!< -1 keeps SimConfig::deadlockCycles
    /// @}
    /** @name Library job types (see JobKind; defaults = Generate) */
    /// @{
    JobKind kind = JobKind::Generate;
    /** Match: design-table ids to score the workload against. */
    std::vector<int> matchDesigns;
    /** Warm: DSE seed (hex on the wire — doubles cannot carry it). */
    uint64_t warmSeed = 0;
    /** Warm: DSE iteration budget. */
    int warmIterations = 0;
    /// @}
};

/**
 * A batch of jobs plus the interned design table they reference.
 * Designs are deduplicated by serialized content, so the fig13/17/19
 * pattern — every job on one shared design — serializes the design
 * once, not once per job.
 */
struct JobSet
{
    std::vector<Json> designs;
    std::vector<JobSpec> jobs;

    /** Intern @p design, returning its table id (existing on dedup). */
    int addDesign(const adg::SysAdg &design);

    /** Intern an already-serialized design (the overlay library keeps
     * canonical JSON; re-decoding it to intern would be waste). */
    int addDesignJson(Json design);

    /** Append a job for @p workload on design @p designId; @return its
     * merged-output index. */
    uint64_t addJob(const std::string &workload, int designId,
                    bool applyTuning = false, bool smallSize = false);

    /** Append a Match job scoring @p workload against every design in
     * @p designIds; @return its merged-output index. */
    uint64_t addMatchJob(const std::string &workload,
                         std::vector<int> designIds,
                         bool applyTuning = false,
                         bool smallSize = false);

    /** Append a Warm job (bounded DSE, seed/iterations fixed on the
     * wire so the row is a pure function of the job); @return its
     * merged-output index. */
    uint64_t addWarmJob(const std::string &workload, uint64_t seed,
                        int iterations, bool applyTuning = false,
                        bool smallSize = false);

  private:
    std::map<std::string, int> designIds;  //!< dump() -> table id
};

/** One per-design match score inside a Match result row. */
struct WireScore
{
    int design = 0;         //!< design-table id this score is for
    bool feasible = false;  //!< some variant scheduled onto it
    double score = 0.0;     //!< model IPC x schedule throughput factor
    double ipc = 0.0;       //!< split-perf-model IPC estimate
    std::string variant;    //!< first-fit variant name (feasible only)
    std::string bottleneck; //!< perf-model limiting level
};

/** One result row: the scalar OverlayRun fields (per-component stats
 * stay in-process; see DESIGN.md "Serving layer"). */
struct ResultRow
{
    bool ok = false;
    bool deadlocked = false;
    /** Watchdog diagnostic / abandonment reason (empty when ok). */
    std::string diagnostic;
    std::string variant;
    uint64_t cycles = 0;
    double ipc = 0.0;
    /** Match rows: one score per matchDesigns entry, in order. */
    std::vector<WireScore> scores;
    /** Warm rows: the handler's result payload (a library entry);
     * null otherwise. Omitted from the wire when null, so Generate
     * rows serialize exactly as before. */
    Json payload;
};

/**
 * Executor for non-Generate jobs, installed via WorkerOptions /
 * CoordinatorOptions. Runs inside the (forked) worker process with
 * the shard's decoded design table; must be a pure function of the
 * job + designs so retries and duplicate dispatches stay
 * byte-identical. The overlay library installs one that scores
 * Match jobs and runs bounded DSE for Warm jobs (library/service.h).
 */
using JobHandler = std::function<ResultRow(
    const JobSpec &,
    const std::vector<std::shared_ptr<const adg::SysAdg>> &)>;

/** @name Record codecs */
/// @{
Json jobToJson(const JobSpec &job);
JobSpec jobFromJson(const Json &json);
Json scoreToJson(const WireScore &score);
WireScore scoreFromJson(const Json &json);
Json resultToJson(const ResultRow &row);
ResultRow resultFromJson(const Json &json);

/** The canonical merged-output line for job @p job with result
 * @p row (no trailing newline). */
std::string mergedLine(const JobSpec &job, const ResultRow &row);

/** The full merged JSONL stream: one mergedLine per job, in job-index
 * order — byte-identical for every worker count and shard size. */
std::string mergedJsonl(const JobSet &set,
                        const std::vector<ResultRow> &rows);

/** Lowercase hex of @p bytes (two digits per byte) — how encoded
 * sim::Snapshot images travel inside JSON records. */
std::string bytesToHex(const std::vector<uint8_t> &bytes);

/** Decode a bytesToHex() string. @return false (leaving @p out
 * empty) on odd length or a non-hex digit. */
bool hexToBytes(const std::string &hex, std::vector<uint8_t> &out);
/// @}

/** @name Line framing over pipes */
/// @{

/** Write @p line plus a newline to @p fd, retrying short writes and
 * EINTR. @return false on EPIPE/other errors (peer gone). */
bool writeLine(int fd, const std::string &line);

/** Incremental line splitter over a pipe fd. fill() pulls whatever
 * the fd has; next() pops complete lines in arrival order. */
class LineReader
{
  public:
    enum class Fill
    {
        Data,        //!< read at least one byte
        WouldBlock,  //!< nonblocking fd had nothing
        Eof,         //!< peer closed (or unrecoverable error)
    };

    /** Read once from @p fd into the buffer. */
    Fill fill(int fd);

    /** Pop the next complete line into @p line. */
    bool next(std::string &line);

  private:
    std::string buf;
    size_t scanned = 0;  //!< prefix of buf known to hold no newline
};

/** Blocking convenience: fill from @p fd until a full line or EOF. */
bool readLineBlocking(int fd, LineReader &reader, std::string &line);
/// @}

} // namespace overgen::serve

#endif // OVERGEN_SERVE_WIRE_H
