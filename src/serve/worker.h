#ifndef OVERGEN_SERVE_WORKER_H
#define OVERGEN_SERVE_WORKER_H

/**
 * @file
 * The worker side of the job server: a blocking read-execute-stream
 * loop a forked child runs over its coordinator pipes. A shard's jobs
 * run in waves of up to `simThreads` consecutive Generate jobs
 * (compile + first-fit schedule per job, heartbeat per job, one
 * sim::runBatch per multi-job wave), and every row streams back as
 * soon as its wave finishes, in job order — so a crash loses only the
 * in-flight wave, never rows already computed. Single-job waves (the
 * simThreads=1 default) additionally stream mid-run checkpoints
 * (WorkerOptions::checkpointEvery) and accept resume snapshots from
 * the shard record, re-entering an interrupted simulation via
 * sim::resumeFrom (see serve/wire.h for the record grammar).
 */

#include "serve/wire.h"

namespace overgen::telemetry {
class Sink;
} // namespace overgen::telemetry

namespace overgen::serve {

/** Worker execution knobs. */
struct WorkerOptions
{
    /** sim::runBatch worker threads inside this process (1 = inline
     * serial; the coordinator's process pool is the primary
     * parallelism, so the default keeps workers single-threaded). */
    int simThreads = 1;
    /** Telemetry sink for the simulations this worker runs (local to
     * the worker process; null = telemetry-free). */
    telemetry::Sink *sink = nullptr;
    /** Stream a "ckpt" record (the engine's sealed snapshot, hex
     * encoded) every this many simulated cycles so the coordinator
     * can hand the latest one to a replacement worker; 0 disables.
     * Only serial (single-job) waves checkpoint: a multi-job
     * sim::runBatch wave would interleave records from concurrent
     * simulations on the one pipe. */
    uint64_t checkpointEvery = 0;
    /** Executor for Match/Warm jobs (see serve::JobHandler). Jobs of
     * those kinds fail with a diagnostic row when unset. */
    JobHandler handler;
};

/**
 * Execute one Generate job against @p design (compile, first-fit
 * schedule, simulate). Exposed for in-process reference runs: the
 * coordinator tests compare serveJobs() output against a loop of
 * runJob() calls. Match/Warm jobs go through the JobHandler instead.
 */
ResultRow runJob(const JobSpec &job, const adg::SysAdg &design,
                 const WorkerOptions &options = {});

/**
 * Serve shards from @p inFd until a "bye" record or EOF, writing
 * results to @p outFd. @return the process exit code. The caller
 * (a forked child) must _exit() with it rather than return through
 * the parent's stack.
 */
int workerLoop(int inFd, int outFd, const WorkerOptions &options = {});

} // namespace overgen::serve

#endif // OVERGEN_SERVE_WORKER_H
