#ifndef OVERGEN_SERVE_WORKER_H
#define OVERGEN_SERVE_WORKER_H

/**
 * @file
 * The worker side of the job server: a blocking read-execute-stream
 * loop a forked child runs over its coordinator pipes. Each shard
 * goes through the existing prepare -> sim::runBatch pipeline —
 * compile + first-fit schedule per job (cheap, serial, heartbeat per
 * job), then one batched simulation pass — and streams back one
 * result record per job, in job order, followed by a shard-done
 * record (see serve/wire.h for the record grammar).
 */

#include "serve/wire.h"

namespace overgen::telemetry {
class Sink;
} // namespace overgen::telemetry

namespace overgen::serve {

/** Worker execution knobs. */
struct WorkerOptions
{
    /** sim::runBatch worker threads inside this process (1 = inline
     * serial; the coordinator's process pool is the primary
     * parallelism, so the default keeps workers single-threaded). */
    int simThreads = 1;
    /** Telemetry sink for the simulations this worker runs (local to
     * the worker process; null = telemetry-free). */
    telemetry::Sink *sink = nullptr;
    /** Executor for Match/Warm jobs (see serve::JobHandler). Jobs of
     * those kinds fail with a diagnostic row when unset. */
    JobHandler handler;
};

/**
 * Execute one Generate job against @p design (compile, first-fit
 * schedule, simulate). Exposed for in-process reference runs: the
 * coordinator tests compare serveJobs() output against a loop of
 * runJob() calls. Match/Warm jobs go through the JobHandler instead.
 */
ResultRow runJob(const JobSpec &job, const adg::SysAdg &design,
                 const WorkerOptions &options = {});

/**
 * Serve shards from @p inFd until a "bye" record or EOF, writing
 * results to @p outFd. @return the process exit code. The caller
 * (a forked child) must _exit() with it rather than return through
 * the parent's stack.
 */
int workerLoop(int inFd, int outFd, const WorkerOptions &options = {});

} // namespace overgen::serve

#endif // OVERGEN_SERVE_WORKER_H
