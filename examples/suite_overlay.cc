/**
 * @file
 * Suite-specialized overlay (paper "suite-OG"): generate one overlay
 * for the whole DSP domain (cholesky, fft, fir, solver, mm), then run
 * every kernel on the same hardware — demonstrating cross-workload
 * flexibility with per-kernel reconfiguration in microseconds.
 *
 * Build and run:  ./build/examples/suite_overlay
 */

#include <cstdio>

#include "dse/explorer.h"
#include "sim/simulate.h"
#include "workloads/interpreter.h"
#include "workloads/suites.h"

using namespace overgen;

int
main()
{
    std::vector<wl::KernelSpec> suite = wl::dspSuite();
    std::printf("exploring one overlay for the DSP suite (%zu "
                "kernels)...\n",
                suite.size());

    dse::DseOptions options;
    options.iterations = 25;
    dse::DseResult result = dse::exploreOverlay(suite, options);

    const adg::Adg &tile = result.design.adg;
    std::printf("\nsuite overlay (est. geomean IPC %.1f, %.0f%% "
                "device):\n",
                result.objective, result.utilization * 100.0);
    std::printf("  tiles %d | L2 banks %d | NoC %d B | per tile: "
                "%d PEs / %d switches / %d spads\n",
                result.design.sys.numTiles, result.design.sys.l2Banks,
                result.design.sys.nocBytes,
                tile.countKind(adg::NodeKind::Pe),
                tile.countKind(adg::NodeKind::Switch),
                tile.countKind(adg::NodeKind::Scratchpad));

    std::printf("\nrunning every kernel on the same overlay:\n");
    std::printf("%-10s %-16s %12s %10s %8s %12s\n", "kernel",
                "variant", "cycles", "IPC", "check", "reconfig");
    bool all_match = true;
    for (size_t k = 0; k < suite.size(); ++k) {
        wl::Memory memory;
        memory.init(suite[k]);
        sim::SimResult sim_result =
            sim::simulate(suite[k], result.mdfgs[k],
                          result.schedules[k], result.design, memory);
        wl::Memory reference;
        reference.init(suite[k]);
        wl::interpret(suite[k], reference);
        bool match = true;
        // cholesky/solver are timing-only multi-tile (outer-loop
        // dependence); check them at functional granularity only when
        // a single tile ran them.
        bool partitionable = suite[k].name != "cholesky" &&
                             suite[k].name != "solver";
        if (partitionable || result.design.sys.numTiles == 1) {
            for (const auto &array : suite[k].arrays) {
                match &= memory.array(array.name) ==
                         reference.array(array.name);
            }
        }
        all_match &= match;
        std::printf("%-10s %-16s %12llu %10.2f %8s %9llu cy\n",
                    suite[k].name.c_str(),
                    result.mdfgs[k].name.c_str(),
                    static_cast<unsigned long long>(sim_result.cycles),
                    sim_result.ipc, match ? "ok" : "MISMATCH",
                    static_cast<unsigned long long>(
                        sim::reconfigurationCycles(
                            result.schedules[k], result.design.adg)));
    }
    std::printf("\nswitching kernels costs microseconds of "
                "reconfiguration; an HLS design would re-flash the "
                "FPGA (>1 s) or re-synthesize (hours).\n");
    return all_match ? 0 : 1;
}
