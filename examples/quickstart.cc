/**
 * @file
 * Quickstart: the whole OverGen flow on a small vector-add kernel.
 *
 *   1. Describe the kernel (what the C+pragma front end hands over).
 *   2. Compile it to memory-enhanced dataflow graph (mDFG) variants.
 *   3. Build an overlay tile and schedule the best variant onto it.
 *   4. Simulate the full system cycle-accurately.
 *   5. Verify the simulated results against the reference interpreter.
 *
 * Build and run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "adg/builders.h"
#include "compiler/compile.h"
#include "sched/scheduler.h"
#include "sim/simulate.h"
#include "workloads/interpreter.h"

using namespace overgen;

namespace {

/** c[i] = a[i] + b[i], 4096 elements of i64 (paper Fig. 2a). */
wl::KernelSpec
vecAddKernel()
{
    wl::KernelSpec k;
    k.name = "vecadd";
    k.suite = wl::Suite::Dsp;
    k.loops = { { "i", 4096, {}, false } };
    k.arrays = { { "a", DataType::I64, 4096, false, "" },
                 { "b", DataType::I64, 4096, false, "" },
                 { "c", DataType::I64, 4096, false, "" } };
    k.accesses = { { "a", { 1 }, 0, false, "" },
                   { "b", { 1 }, 0, false, "" },
                   { "c", { 1 }, 0, true, "" } };
    k.ops = { { Opcode::Add, DataType::I64, wl::Operand::access(0),
                wl::Operand::access(1), 2 } };
    k.maxUnroll = 8;
    return k;
}

} // namespace

int
main()
{
    // 1. The kernel.
    wl::KernelSpec kernel = vecAddKernel();
    std::printf("kernel: %s, %lld iterations\n", kernel.name.c_str(),
                static_cast<long long>(kernel.totalIterations()));

    // 2. Compile: the compiler pre-generates a family of variants at
    //    different unroll degrees (most aggressive first).
    auto variants = compiler::compileVariants(kernel);
    std::printf("compiled %zu mDFG variants:", variants.size());
    for (const auto &variant : variants)
        std::printf(" %s", variant.name.c_str());
    std::printf("\n");

    // 3. An overlay tile: a 4x4 switch mesh with integer PEs.
    adg::MeshConfig config;
    config.rows = 4;
    config.cols = 4;
    config.numPes = 8;
    config.numInPorts = 6;
    config.numOutPorts = 3;
    config.datapathBytes = 64;
    config.dmaBandwidthBytes = 64;
    config.peCapabilities = adg::intCapabilities(DataType::I64);
    adg::SysAdg design;
    design.adg = adg::buildMeshTile(config);
    design.sys.numTiles = 2;
    std::printf("overlay tile: %d PEs, %d switches, %d ports\n",
                design.adg.countKind(adg::NodeKind::Pe),
                design.adg.countKind(adg::NodeKind::Switch),
                design.adg.countKind(adg::NodeKind::InPort) +
                    design.adg.countKind(adg::NodeKind::OutPort));

    // Schedule the first variant that maps ("relax DFG complexity").
    sched::SpatialScheduler scheduler(design.adg);
    auto fit = scheduler.scheduleFirstFit(variants);
    if (!fit) {
        std::printf("no variant schedules onto this tile\n");
        return 1;
    }
    const dfg::Mdfg &mdfg = variants[fit->second];
    std::printf("scheduled %s: %zu placements, route cost %d\n",
                mdfg.name.c_str(), fit->first.placement.size(),
                fit->first.routeCost);

    // 4. Simulate the dual-tile system.
    wl::Memory memory;
    memory.init(kernel);
    sim::SimResult result =
        sim::simulate(kernel, mdfg, fit->first, design, memory);
    std::printf("simulated: %llu cycles, IPC %.2f, %llu iterations\n",
                static_cast<unsigned long long>(result.cycles),
                result.ipc,
                static_cast<unsigned long long>(
                    result.totalIterations));

    // 5. Verify against the golden interpreter.
    wl::Memory reference;
    reference.init(kernel);
    wl::interpret(kernel, reference);
    bool match = memory.array("c") == reference.array("c");
    std::printf("functional check: %s\n",
                match ? "MATCH" : "MISMATCH");
    std::printf(
        "reconfiguring this overlay for a new kernel takes ~%llu "
        "cycles (vs >1s to reflash the FPGA)\n",
        static_cast<unsigned long long>(
            sim::reconfigurationCycles(fit->first, design.adg)));
    return match ? 0 : 1;
}
