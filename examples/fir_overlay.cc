/**
 * @file
 * Workload-specialized overlay generation (paper "w/l-OG"): run the
 * unified system + accelerator DSE for a single FIR kernel, print the
 * chosen design point, then execute the kernel on the simulated
 * overlay and verify the results.
 *
 * Build and run:  ./build/examples/fir_overlay
 */

#include <cstdio>

#include "dse/explorer.h"
#include "sim/simulate.h"
#include "workloads/interpreter.h"
#include "workloads/suites.h"

using namespace overgen;

int
main()
{
    wl::KernelSpec fir = wl::makeFir();
    std::printf("exploring an overlay specialized to '%s'...\n",
                fir.name.c_str());

    dse::DseOptions options;
    options.iterations = 25;  // the paper runs hours; demo runs seconds
    dse::DseResult result = dse::exploreOverlay({ fir }, options);

    const adg::Adg &tile = result.design.adg;
    std::printf("\nchosen design (est. IPC %.1f, %.0f%% of the "
                "device, %.1fs of DSE):\n",
                result.objective, result.utilization * 100.0,
                result.elapsedSeconds);
    std::printf("  tiles %d | L2 %d KiB x %d banks | NoC %d B/cyc\n",
                result.design.sys.numTiles,
                result.design.sys.l2CapacityKiB /
                    result.design.sys.l2Banks,
                result.design.sys.l2Banks, result.design.sys.nocBytes);
    std::printf("  per tile: %d PEs, %d switches (avg radix %.2f), "
                "%d in-ports, %d out-ports, %d scratchpads\n",
                tile.countKind(adg::NodeKind::Pe),
                tile.countKind(adg::NodeKind::Switch),
                tile.averageSwitchRadix(),
                tile.countKind(adg::NodeKind::InPort),
                tile.countKind(adg::NodeKind::OutPort),
                tile.countKind(adg::NodeKind::Scratchpad));
    for (const auto &mapping : result.mappings) {
        std::printf("  %s -> variant %s (bottleneck: %s)\n",
                    mapping.kernel.c_str(),
                    mapping.variantName.c_str(),
                    mapping.bottleneck.c_str());
    }

    // Execute on the simulated overlay.
    wl::Memory memory;
    memory.init(fir);
    sim::SimResult sim_result =
        sim::simulate(fir, result.mdfgs[0], result.schedules[0],
                      result.design, memory);
    std::printf("\nsimulated execution: %llu cycles (%.2f ms at "
                "92.87 MHz), IPC %.2f\n",
                static_cast<unsigned long long>(sim_result.cycles),
                sim_result.cycles / 92.87e3, sim_result.ipc);

    wl::Memory reference;
    reference.init(fir);
    wl::interpret(fir, reference);
    bool match = memory.array("c") == reference.array("c");
    std::printf("functional check: %s\n",
                match ? "MATCH" : "MISMATCH");

    // Persist the design spec as JSON (the sysADG handed to the
    // compiler for future applications).
    std::string json = result.design.toJson().dump(2);
    std::printf("\nsysADG spec is %zu bytes of JSON; first line: %.40s...\n",
                json.size(), json.c_str());
    return match ? 0 : 1;
}
