/**
 * @file
 * Overlay flexibility ("leave-one-out", paper Q5): generate an overlay
 * for MachSuite *without* one workload, then map the unseen workload
 * onto it. The compiler relaxes the DFG until a variant fits; the
 * result runs with modest degradation instead of requiring a new
 * hours-long synthesis.
 *
 * Build and run:  ./build/examples/leave_one_out [kernel=gemm]
 */

#include <cstdio>
#include <cstring>

#include "compiler/compile.h"
#include "dse/explorer.h"
#include "sched/scheduler.h"
#include "sim/simulate.h"
#include "workloads/suites.h"

using namespace overgen;

int
main(int argc, char **argv)
{
    std::string held_out = argc > 1 ? argv[1] : "gemm";
    std::vector<wl::KernelSpec> rest;
    wl::KernelSpec target = wl::workloadByName(held_out);
    for (auto &k : wl::machSuite()) {
        if (k.name != held_out)
            rest.push_back(std::move(k));
    }
    if (rest.size() != 4) {
        std::printf("'%s' is not a MachSuite workload\n",
                    held_out.c_str());
        return 1;
    }

    dse::DseOptions options;
    options.iterations = 20;
    std::printf("DSE over MachSuite minus '%s'...\n",
                held_out.c_str());
    dse::DseResult without = dse::exploreOverlay(rest, options);

    // Map the unseen workload onto the existing overlay: compile and
    // walk the variant ladder until something fits.
    sched::SpatialScheduler scheduler(without.design.adg);
    auto variants = compiler::compileVariants(target);
    auto fit = scheduler.scheduleFirstFit(variants);
    if (!fit) {
        std::printf("'%s' does not map onto the leave-one-out "
                    "overlay at any variant\n",
                    held_out.c_str());
        return 1;
    }
    wl::Memory memory;
    memory.init(target);
    sim::SimResult on_loo =
        sim::simulate(target, variants[fit->second], fit->first,
                      without.design, memory);

    // Reference: an overlay that saw the workload during DSE.
    std::vector<wl::KernelSpec> full = wl::machSuite();
    dse::DseResult with_it = dse::exploreOverlay(full, options);
    size_t index = 0;
    for (size_t k = 0; k < full.size(); ++k) {
        if (full[k].name == held_out)
            index = k;
    }
    wl::Memory memory2;
    memory2.init(target);
    sim::SimResult on_suite =
        sim::simulate(target, with_it.mdfgs[index],
                      with_it.schedules[index], with_it.design,
                      memory2);

    double relative = static_cast<double>(on_suite.cycles) /
                      static_cast<double>(on_loo.cycles);
    std::printf("\n'%s' on the suite overlay:        %10llu cycles "
                "(variant %s)\n",
                held_out.c_str(),
                static_cast<unsigned long long>(on_suite.cycles),
                with_it.mdfgs[index].name.c_str());
    std::printf("'%s' on the leave-one-out overlay: %10llu cycles "
                "(variant %s)\n",
                held_out.c_str(),
                static_cast<unsigned long long>(on_loo.cycles),
                variants[fit->second].name.c_str());
    std::printf("relative performance: %.0f%% — and deploying it "
                "took a compile + ~%llu-cycle reconfiguration, not "
                "hours of synthesis.\n",
                relative * 100.0,
                static_cast<unsigned long long>(
                    sim::reconfigurationCycles(fit->first,
                                               without.design.adg)));
    return 0;
}
